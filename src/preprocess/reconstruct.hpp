// Model reconstruction for the WCNF preprocessor.
//
// Every simplification that removes a variable from the formula — a
// level-0 fixed assignment, an equivalent-literal substitution, or a
// bounded-variable-elimination step — appends a record here. Replaying
// the records in reverse chronological order extends any model of the
// simplified formula to a model of the original formula over the full
// variable space (the classic SatELite/MiniSat elimination-stack
// scheme), so MPMCS extraction, top-k blocking clauses and cost
// accounting all keep working in original-variable terms.
#pragma once

#include <cstdint>
#include <vector>

#include "logic/cnf.hpp"
#include "logic/lit.hpp"

namespace fta::preprocess {

class ModelReconstructor {
 public:
  /// A level-0 assignment: `l` holds in every model.
  void record_fixed(logic::Lit l) {
    records_.push_back(Record{Kind::Fixed, l.var(), l, {}});
  }

  /// `v` was substituted away: v <-> rep (rep may be negated).
  void record_equivalence(logic::Var v, logic::Lit rep) {
    records_.push_back(Record{Kind::Equivalence, v, rep, {}});
  }

  /// `v` was eliminated by resolution; `occurrences` are the original
  /// clauses containing v (either polarity) at elimination time.
  void record_elimination(logic::Var v,
                          std::vector<logic::Clause> occurrences) {
    records_.push_back(
        Record{Kind::Elimination, v, logic::kNoLit, std::move(occurrences)});
  }

  /// `clause` was removed as blocked on `l` (var(l) still occurs in the
  /// formula): a model falsifying the clause is repaired by making `l`
  /// true, which cannot break any clause containing ~l (all those
  /// resolvents are tautological by the blocking condition).
  void record_blocked(logic::Lit l, logic::Clause clause) {
    records_.push_back(Record{Kind::Blocked, l.var(), l, {std::move(clause)}});
  }

  /// Completes `model` (indexed by original variable, at least
  /// `num_vars` entries) in place: every removed variable is assigned a
  /// value consistent with the original formula. Values of surviving
  /// variables are left untouched.
  void extend(std::vector<bool>& model) const;

  std::size_t num_records() const noexcept { return records_.size(); }
  bool empty() const noexcept { return records_.empty(); }

 private:
  enum class Kind : std::uint8_t { Fixed, Equivalence, Elimination, Blocked };

  struct Record {
    Kind kind;
    logic::Var var;
    logic::Lit lit;  ///< Fixed: forced; Equivalence: rep; Blocked: blocker.
    std::vector<logic::Clause> clauses;  ///< Elimination/Blocked witnesses.
  };

  std::vector<Record> records_;  // chronological order of simplification
};

}  // namespace fta::preprocess
