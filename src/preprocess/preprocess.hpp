// WCNF preprocessing (pipeline Step 3.5): formula simplification before
// MaxSAT solving, in the SatELite / CaDiCaL tradition.
//
// The Tseitin encoding of a fault tree is dominated by auxiliary gate
// variables with few occurrences — exactly the variables classical CNF
// preprocessing removes. Four techniques run to fixpoint over shared
// occurrence lists:
//
//   * level-0 unit propagation (the asserted root cascades through
//     single-child chains and forced gates),
//   * clause subsumption and self-subsuming resolution,
//   * equivalent-literal substitution from the binary implication
//     graph's strongly connected components,
//   * blocked clause elimination (BCE): on full Tseitin encodings this
//     strips the unused-polarity half of each gate definition, converging
//     towards the Plaisted–Greenbaum form and unlocking further BVE, and
//   * bounded variable elimination (BVE): a variable is resolved away
//     when the non-tautological resolvents do not outnumber the clauses
//     they replace, in clauses or in total literals.
//
// Soundness for *weighted partial* MaxSAT needs more care than for plain
// SAT: any variable appearing in a soft clause is automatically frozen
// (callers may freeze more, e.g. every basic-event variable), and frozen
// variables are never eliminated or substituted away — so the set of
// models projected onto the frozen variables, and hence the optimal
// cost, is preserved exactly. Unit propagation may still *fix* a frozen
// variable (the assignment is forced); the affected soft clauses are
// discharged into `cost_offset` and the fix is replayed by the
// ModelReconstructor, which maps simplified-space models back to the
// original variable space.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "maxsat/instance.hpp"
#include "preprocess/reconstruct.hpp"
#include "util/cancel.hpp"

namespace fta::preprocess {

/// Technique toggles and effort caps. Level-0 unit propagation is not
/// optional: every other pass relies on a propagated clause database
/// (no live clause mentions an assigned variable).
struct PreprocessOptions {
  bool subsumption = true;       ///< Includes self-subsuming resolution.
  bool equivalences = true;      ///< Binary-implication-graph SCCs.
  bool bce = true;               ///< Blocked clause elimination.
  bool bve = true;
  /// Simplification passes repeat until fixpoint or this many rounds.
  std::uint32_t max_rounds = 4;
  /// BVE skips variables with more total occurrences than this (dense
  /// variables rarely eliminate and cost quadratic resolvent checks).
  std::uint32_t bve_occurrence_cap = 24;
  /// BVE accepts an elimination when it adds at most this many clauses
  /// over the ones it removes (0 = classic "never grow" rule).
  std::uint32_t bve_clause_growth = 0;
  /// ... and when the resolvents' total literal count stays within this
  /// factor of the removed literals (1.0 = never grow; literal growth is
  /// what makes clause-count-only BVE slow down unit propagation).
  double bve_literal_growth = 1.0;
};

struct PreprocessStats {
  std::size_t original_clauses = 0;
  std::size_t original_literals = 0;
  std::size_t simplified_clauses = 0;
  std::size_t simplified_literals = 0;
  std::size_t fixed_vars = 0;        ///< Level-0 assignments.
  std::size_t substituted_vars = 0;  ///< Equivalent-literal merges.
  std::size_t eliminated_vars = 0;   ///< BVE removals.
  std::size_t subsumed_clauses = 0;
  std::size_t strengthened_clauses = 0;  ///< Self-subsuming resolutions.
  std::size_t blocked_clauses = 0;       ///< Removed by BCE.
  std::size_t rounds = 0;
  double seconds = 0.0;
  double equivalence_seconds = 0.0;
  double subsumption_seconds = 0.0;
  double bce_seconds = 0.0;
  double bve_seconds = 0.0;
};

struct PreprocessResult {
  /// Hard clauses were refuted at level 0: the instance has no model.
  bool unsat = false;
  /// Simplified instance over the *same* variable numbering (removed
  /// variables simply no longer occur). Soft clauses carry over minus
  /// the ones discharged by fixed assignments.
  maxsat::WcnfInstance simplified;
  /// Maps models of `simplified` back to the original variable space.
  ModelReconstructor reconstructor;
  /// Soft weight made mandatory by forced assignments; add to the
  /// solver-reported cost to get the original-instance cost.
  maxsat::Weight cost_offset = 0;
  /// Level-0 assignment per variable (Undef when free): lets callers
  /// simplify clauses they append to `simplified` afterwards (e.g. the
  /// pipeline's top-k blocking clauses over frozen event variables).
  std::vector<logic::LBool> level0;
  PreprocessStats stats;

  bool fixed_true(logic::Var v) const {
    return v < level0.size() && level0[v] == logic::LBool::True;
  }
};

/// Simplifies `instance`. Variables of soft clauses are always frozen;
/// `extra_frozen` (indexed by variable, may be shorter than num_vars)
/// freezes more. Exact: optimal cost and optimal-model projections onto
/// frozen variables are preserved.
///
/// The cancel token (when set) is polled at pass boundaries: a deadline
/// or cancellation stops simplification early and returns the current —
/// still sound, just less simplified — state, so per-request timeouts
/// bound this phase too.
PreprocessResult preprocess(const maxsat::WcnfInstance& instance,
                            const std::vector<bool>& extra_frozen = {},
                            const PreprocessOptions& opts = {},
                            util::CancelTokenPtr cancel = nullptr);

}  // namespace fta::preprocess
