// Quantitative fault-tree analysis: top-event probability (exact and
// approximations) and structural risk summaries.
#pragma once

#include <vector>

#include "ft/cut_set.hpp"
#include "ft/fault_tree.hpp"

namespace fta::analysis {

/// Exact top-event probability by Shannon decomposition over a BDD.
double top_event_probability(const ft::FaultTree& tree);

/// Rare-event approximation: sum of MCS probabilities (an upper bound for
/// coherent trees; accurate when probabilities are small).
double rare_event_approximation(const ft::FaultTree& tree,
                                const std::vector<ft::CutSet>& mcs);

/// Min-cut upper bound: 1 - prod (1 - P(MCS_i)); tighter than rare-event,
/// still an upper bound for coherent trees.
double min_cut_upper_bound(const ft::FaultTree& tree,
                           const std::vector<ft::CutSet>& mcs);

/// Single points of failure: the size-1 minimal cut sets, i.e. events
/// whose occurrence alone triggers the top event.
std::vector<ft::EventIndex> single_points_of_failure(
    const ft::FaultTree& tree, const std::vector<ft::CutSet>& mcs);

/// Distribution of MCS sizes: result[k] = number of MCSs with k events.
std::vector<std::size_t> mcs_order_histogram(
    const std::vector<ft::CutSet>& mcs);

}  // namespace fta::analysis
