#include "analysis/uncertainty.hpp"

#include <algorithm>
#include <cmath>

#include "bdd/fta_bdd.hpp"
#include "util/rng.hpp"

namespace fta::analysis {

namespace {

/// Standard normal via Box–Muller (one draw per call; the spare is kept).
class NormalSampler {
 public:
  explicit NormalSampler(util::Rng& rng) : rng_(rng) {}

  double next() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u = 0.0;
    do {
      u = rng_.uniform();
    } while (u <= 1e-300);
    const double v = rng_.uniform();
    const double r = std::sqrt(-2.0 * std::log(u));
    spare_ = r * std::sin(2.0 * M_PI * v);
    have_spare_ = true;
    return r * std::cos(2.0 * M_PI * v);
  }

 private:
  util::Rng& rng_;
  bool have_spare_ = false;
  double spare_ = 0.0;
};

double quantile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double idx = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

UncertaintyResult monte_carlo(const ft::FaultTree& tree,
                              UncertaintyOptions opts,
                              const std::vector<double>& error_factors) {
  tree.validate();
  bdd::FaultTreeBdd analysis(tree);

  // Lognormal parameterisation: median = nominal p, sigma = ln(EF)/1.645
  // (EF is the 95th/50th percentile ratio; z_0.95 = 1.645).
  const double z95 = 1.6448536269514722;
  std::vector<double> sigma(tree.num_events(), 0.0);
  for (ft::EventIndex e = 0; e < tree.num_events(); ++e) {
    double ef = opts.default_error_factor;
    if (e < error_factors.size() && error_factors[e] >= 1.0) {
      ef = error_factors[e];
    }
    sigma[e] = std::log(std::max(ef, 1.0)) / z95;
  }

  util::Rng rng(opts.seed);
  NormalSampler normal(rng);

  std::vector<double> tops;
  tops.reserve(opts.samples);
  std::map<ft::CutSet, std::size_t> argmax_counts;
  std::vector<double> sample(tree.num_events(), 0.0);

  for (std::size_t s = 0; s < opts.samples; ++s) {
    for (ft::EventIndex e = 0; e < tree.num_events(); ++e) {
      const double p = tree.event_probability(e);
      if (p <= 0.0 || p >= 1.0 || sigma[e] == 0.0) {
        sample[e] = p;
        continue;
      }
      const double drawn = p * std::exp(sigma[e] * normal.next());
      sample[e] = std::min(drawn, 1.0);
    }
    tops.push_back(analysis.top_probability_with(sample));
    if (const auto best = analysis.mpmcs_with(sample)) {
      ++argmax_counts[best->first];
    }
  }

  UncertaintyResult result;
  result.samples = opts.samples;
  double sum = 0.0;
  for (const double t : tops) sum += t;
  result.mean = tops.empty() ? 0.0 : sum / static_cast<double>(tops.size());
  std::sort(tops.begin(), tops.end());
  result.p05 = quantile(tops, 0.05);
  result.p50 = quantile(tops, 0.50);
  result.p95 = quantile(tops, 0.95);
  for (const auto& [cut, count] : argmax_counts) {
    result.mpmcs_shares.emplace_back(
        cut, static_cast<double>(count) / static_cast<double>(opts.samples));
  }
  std::sort(result.mpmcs_shares.begin(), result.mpmcs_shares.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return result;
}

}  // namespace fta::analysis
