// Fault-tree modularization (Dutuit & Rauzy's linear-time algorithm).
//
// A *module* is a gate whose descendant events occur nowhere else in the
// tree: it can be analysed independently and treated as a single
// super-event by its parents. Modularization is the classical lever for
// scaling exact FTA, and it generalises the pipeline's top-OR
// decomposition: any module can be solved as a separate MaxSAT instance.
//
// Detection uses the standard double-DFS timestamp test: gate g is a
// module iff the first visit of every descendant is after the first visit
// of g and the last visit of every descendant is before the last visit of
// g (i.e. no path reaches a descendant except through g).
#pragma once

#include <vector>

#include "ft/fault_tree.hpp"

namespace fta::analysis {

struct ModuleInfo {
  ft::NodeIndex gate = ft::kNoIndex;
  std::size_t descendant_events = 0;  ///< Events under this module.
};

/// All modules of the tree, excluding trivial ones (basic events). The top
/// gate is always a module and is included.
std::vector<ModuleInfo> find_modules(const ft::FaultTree& tree);

/// True iff `gate` is a module of the tree.
bool is_module(const ft::FaultTree& tree, ft::NodeIndex gate);

/// A module lifted out as a standalone fault tree. Events are renumbered
/// densely in the subtree; `event_map` translates the subtree's
/// EventIndex space back to the original tree's (cut sets computed on the
/// extracted tree map back through it).
struct ExtractedModule {
  ft::FaultTree tree;
  std::vector<ft::EventIndex> event_map;  ///< subtree index -> original.
};

/// Copies the subtree rooted at `gate` (which need not be a module — the
/// caller guarantees independence when it matters) into its own tree,
/// preserving node names, gate types/thresholds and event probabilities.
/// Deterministic: node visitation order depends only on the tree shape.
ExtractedModule extract_module(const ft::FaultTree& tree, ft::NodeIndex gate);

}  // namespace fta::analysis
