// Fault-tree modularization (Dutuit & Rauzy's linear-time algorithm).
//
// A *module* is a gate whose descendant events occur nowhere else in the
// tree: it can be analysed independently and treated as a single
// super-event by its parents. Modularization is the classical lever for
// scaling exact FTA, and it generalises the pipeline's top-OR
// decomposition: any module can be solved as a separate MaxSAT instance.
//
// Detection uses the standard double-DFS timestamp test: gate g is a
// module iff the first visit of every descendant is after the first visit
// of g and the last visit of every descendant is before the last visit of
// g (i.e. no path reaches a descendant except through g).
#pragma once

#include <vector>

#include "ft/fault_tree.hpp"

namespace fta::analysis {

struct ModuleInfo {
  ft::NodeIndex gate = ft::kNoIndex;
  std::size_t descendant_events = 0;  ///< Events under this module.
};

/// All modules of the tree, excluding trivial ones (basic events). The top
/// gate is always a module and is included.
std::vector<ModuleInfo> find_modules(const ft::FaultTree& tree);

/// True iff `gate` is a module of the tree.
bool is_module(const ft::FaultTree& tree, ft::NodeIndex gate);

}  // namespace fta::analysis
