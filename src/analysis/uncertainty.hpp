// Monte Carlo uncertainty propagation.
//
// Event probabilities in real assessments are estimates with error bars,
// conventionally a lognormal with a median and an error factor
// EF = p95 / p50. This module samples event probabilities, re-evaluates
// the exact top probability on a fixed BDD (structure is probability-
// independent, so each sample costs one linear pass), and tracks how
// often each minimal cut set is the MPMCS — i.e. how robust the headline
// answer of the paper's method is to parameter uncertainty.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "ft/cut_set.hpp"
#include "ft/fault_tree.hpp"

namespace fta::analysis {

struct UncertaintyOptions {
  std::size_t samples = 1000;
  std::uint64_t seed = 1;
  /// Error factor applied to every event (p95/p50 of the lognormal);
  /// per-event overrides via the `error_factors` argument.
  double default_error_factor = 3.0;
};

struct UncertaintyResult {
  // Top-event probability distribution.
  double mean = 0.0;
  double p05 = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  // MPMCS stability: cut set -> fraction of samples in which it was the
  // maximum-probability MCS (descending by fraction).
  std::vector<std::pair<ft::CutSet, double>> mpmcs_shares;
  std::size_t samples = 0;
};

/// Propagates lognormal uncertainty through the tree. `error_factors`
/// (optional, indexed by EventIndex) overrides the default per event;
/// values must be >= 1. Events with p == 0 or p == 1 are kept fixed.
UncertaintyResult monte_carlo(const ft::FaultTree& tree,
                              UncertaintyOptions opts = {},
                              const std::vector<double>& error_factors = {});

}  // namespace fta::analysis
