#include "analysis/quantitative.hpp"

#include <algorithm>

#include "bdd/fta_bdd.hpp"

namespace fta::analysis {

double top_event_probability(const ft::FaultTree& tree) {
  bdd::FaultTreeBdd analysis(tree);
  return analysis.top_probability();
}

double rare_event_approximation(const ft::FaultTree& tree,
                                const std::vector<ft::CutSet>& mcs) {
  double sum = 0.0;
  for (const auto& cs : mcs) sum += cs.probability(tree);
  return sum;
}

double min_cut_upper_bound(const ft::FaultTree& tree,
                           const std::vector<ft::CutSet>& mcs) {
  double product = 1.0;
  for (const auto& cs : mcs) product *= 1.0 - cs.probability(tree);
  return 1.0 - product;
}

std::vector<ft::EventIndex> single_points_of_failure(
    const ft::FaultTree& tree, const std::vector<ft::CutSet>& mcs) {
  (void)tree;
  std::vector<ft::EventIndex> spofs;
  for (const auto& cs : mcs) {
    if (cs.size() == 1) spofs.push_back(cs.events()[0]);
  }
  std::sort(spofs.begin(), spofs.end());
  spofs.erase(std::unique(spofs.begin(), spofs.end()), spofs.end());
  return spofs;
}

std::vector<std::size_t> mcs_order_histogram(
    const std::vector<ft::CutSet>& mcs) {
  std::vector<std::size_t> histogram;
  for (const auto& cs : mcs) {
    if (cs.size() >= histogram.size()) histogram.resize(cs.size() + 1, 0);
    ++histogram[cs.size()];
  }
  return histogram;
}

}  // namespace fta::analysis
