// Common-cause failure (CCF) modelling with the beta-factor model.
//
// Redundancy only helps while failures are independent; in practice a
// fraction beta of each member's failure probability is attributable to a
// shared cause (same power feed, same maintenance error, same firmware).
// The beta-factor transform rewrites every CCF-group member e (total
// probability p) into OR(e_indep, CCF_g) with p(e_indep) = (1 - beta) p
// and one shared event CCF_g per group whose probability is beta times
// the group's mean member probability.
//
// The rewrite yields an ordinary fault tree, so the whole analysis stack
// (MPMCS, BDD, importance) applies unchanged — and typically the MPMCS
// shifts from an independent pair to the common-cause event, which is the
// practical insight CCF analysis exists for.
#pragma once

#include <string>
#include <vector>

#include "ft/fault_tree.hpp"

namespace fta::analysis {

struct CcfGroup {
  std::string name;                       ///< Used for the common event.
  std::vector<ft::EventIndex> members;    ///< >= 2 distinct events.
  double beta = 0.1;                      ///< Common-cause fraction [0,1].
};

/// Applies the beta-factor transform for all groups, returning a new tree.
/// Event names are preserved; each member's leaf becomes an OR gate named
/// "<event>__ccf_or" over "<event>__indep" and "<group>__common".
/// Throws ValidationError on malformed groups (unknown events, overlaps,
/// beta out of range).
ft::FaultTree apply_beta_factor(const ft::FaultTree& tree,
                                const std::vector<CcfGroup>& groups);

}  // namespace fta::analysis
