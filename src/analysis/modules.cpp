#include "analysis/modules.hpp"

#include <algorithm>

namespace fta::analysis {

namespace {

/// Nodes strictly below `gate` (descendants across the DAG).
std::vector<bool> descendant_mask(const ft::FaultTree& tree,
                                  ft::NodeIndex gate) {
  std::vector<bool> seen(tree.num_nodes(), false);
  std::vector<ft::NodeIndex> stack(tree.node(gate).children.begin(),
                                   tree.node(gate).children.end());
  while (!stack.empty()) {
    const ft::NodeIndex id = stack.back();
    stack.pop_back();
    if (seen[id]) continue;
    seen[id] = true;
    for (ft::NodeIndex c : tree.node(id).children) stack.push_back(c);
  }
  return seen;
}

/// Nodes reachable from the top.
std::vector<bool> reachable_mask(const ft::FaultTree& tree) {
  std::vector<bool> seen(tree.num_nodes(), false);
  std::vector<ft::NodeIndex> stack{tree.top()};
  while (!stack.empty()) {
    const ft::NodeIndex id = stack.back();
    stack.pop_back();
    if (seen[id]) continue;
    seen[id] = true;
    for (ft::NodeIndex c : tree.node(id).children) stack.push_back(c);
  }
  return seen;
}

}  // namespace

std::vector<ModuleInfo> find_modules(const ft::FaultTree& tree) {
  tree.validate();
  const auto reachable = reachable_mask(tree);
  std::vector<ModuleInfo> modules;
  for (ft::NodeIndex g = 0; g < tree.num_nodes(); ++g) {
    const ft::Node& n = tree.node(g);
    if (n.type == ft::NodeType::BasicEvent || !reachable[g]) continue;

    // g is a module iff the only edges into its descendant set come from
    // g itself: no reachable node outside subtree(g) may have a child
    // inside it.
    const auto inside = descendant_mask(tree, g);
    bool ok = true;
    std::size_t events = 0;
    for (ft::NodeIndex d = 0; d < tree.num_nodes() && ok; ++d) {
      if (inside[d] && tree.node(d).type == ft::NodeType::BasicEvent) {
        ++events;
      }
      if (d == g || !reachable[d] || inside[d]) continue;
      for (ft::NodeIndex c : tree.node(d).children) {
        if (inside[c]) {
          ok = false;
          break;
        }
      }
    }
    if (ok) modules.push_back(ModuleInfo{g, events});
  }
  return modules;
}

ExtractedModule extract_module(const ft::FaultTree& tree,
                               ft::NodeIndex gate) {
  ExtractedModule out;
  // Post-order copy: children are materialised before the gate that uses
  // them. `mapping` keeps shared sub-DAGs shared in the copy.
  std::vector<ft::NodeIndex> mapping(tree.num_nodes(), ft::kNoIndex);
  struct Frame {
    ft::NodeIndex node;
    std::size_t next_child = 0;
  };
  std::vector<Frame> stack{{gate}};
  while (!stack.empty()) {
    Frame& f = stack.back();
    const ft::Node& n = tree.node(f.node);
    if (mapping[f.node] != ft::kNoIndex) {
      stack.pop_back();
      continue;
    }
    if (f.next_child < n.children.size()) {
      stack.push_back({n.children[f.next_child++]});
      continue;
    }
    if (n.type == ft::NodeType::BasicEvent) {
      mapping[f.node] = out.tree.add_basic_event(
          n.name, n.enabled ? n.probability : 0.0);
      out.event_map.push_back(n.event_index);
    } else {
      std::vector<ft::NodeIndex> children;
      children.reserve(n.children.size());
      for (const ft::NodeIndex c : n.children) children.push_back(mapping[c]);
      mapping[f.node] =
          n.type == ft::NodeType::Vote
              ? out.tree.add_vote_gate(n.name, n.k, std::move(children))
              : out.tree.add_gate(n.name, n.type, std::move(children));
    }
    stack.pop_back();
  }
  out.tree.set_top(mapping[gate]);
  out.tree.validate();
  return out;
}

bool is_module(const ft::FaultTree& tree, ft::NodeIndex gate) {
  const auto modules = find_modules(tree);
  return std::any_of(modules.begin(), modules.end(),
                     [gate](const ModuleInfo& m) { return m.gate == gate; });
}

}  // namespace fta::analysis
