#include "analysis/ccf.hpp"

#include <unordered_map>
#include <unordered_set>

namespace fta::analysis {

ft::FaultTree apply_beta_factor(const ft::FaultTree& tree,
                                const std::vector<CcfGroup>& groups) {
  tree.validate();
  // Validate groups and index members.
  std::unordered_map<ft::EventIndex, std::size_t> member_group;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const CcfGroup& group = groups[g];
    if (group.members.size() < 2) {
      throw ft::ValidationError("CCF group '" + group.name +
                                "' needs >= 2 members");
    }
    if (!(group.beta >= 0.0 && group.beta <= 1.0)) {
      throw ft::ValidationError("CCF group '" + group.name +
                                "': beta out of [0,1]");
    }
    for (const ft::EventIndex e : group.members) {
      if (e >= tree.num_events()) {
        throw ft::ValidationError("CCF group '" + group.name +
                                  "': unknown event index");
      }
      if (!member_group.emplace(e, g).second) {
        throw ft::ValidationError("event '" + tree.event(e).name +
                                  "' appears in two CCF groups");
      }
    }
  }

  ft::FaultTree out;
  // One common event per group, created first so member rewrites can
  // reference it. Its probability is beta * mean member probability (the
  // standard homogeneous-group approximation).
  std::vector<ft::NodeIndex> common(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    double mean = 0.0;
    for (const ft::EventIndex e : groups[g].members) {
      mean += tree.event_probability(e);
    }
    mean /= static_cast<double>(groups[g].members.size());
    common[g] =
        out.add_basic_event(groups[g].name + "__common", groups[g].beta * mean);
  }

  // Copy nodes in index order (children always precede parents in a
  // FaultTree, so a single pass with an index remap suffices).
  std::vector<ft::NodeIndex> remap(tree.num_nodes(), ft::kNoIndex);
  for (ft::NodeIndex i = 0; i < tree.num_nodes(); ++i) {
    const ft::Node& n = tree.node(i);
    if (n.type == ft::NodeType::BasicEvent) {
      const auto it = member_group.find(n.event_index);
      if (it == member_group.end()) {
        remap[i] = out.add_basic_event(n.name, n.probability);
      } else {
        const CcfGroup& group = groups[it->second];
        const ft::NodeIndex indep = out.add_basic_event(
            n.name + "__indep", (1.0 - group.beta) * n.probability);
        remap[i] = out.add_gate(n.name + "__ccf_or", ft::NodeType::Or,
                                {indep, common[it->second]});
      }
      continue;
    }
    std::vector<ft::NodeIndex> children;
    children.reserve(n.children.size());
    for (const ft::NodeIndex c : n.children) children.push_back(remap[c]);
    remap[i] = n.type == ft::NodeType::Vote
                   ? out.add_vote_gate(n.name, n.k, std::move(children))
                   : out.add_gate(n.name, n.type, std::move(children));
  }
  out.set_top(remap[tree.top()]);
  out.validate();
  return out;
}

}  // namespace fta::analysis
