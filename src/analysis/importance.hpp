// Importance measures: which basic events matter most?
//
// Computed exactly against the BDD-based top-event probability:
//   Birnbaum        I_B(e)  = P(top | e occurs) - P(top | e absent)
//   Criticality     I_C(e)  = I_B(e) * p(e) / P(top)
//   Fussell-Vesely  I_FV(e) = P(union of MCSs containing e) / P(top)
//                              (rare-event approximated numerator)
//   RAW             P(top | e occurs) / P(top)   (risk achievement worth)
//   RRW             P(top) / P(top | e absent)   (risk reduction worth)
// These support the paper's motivation: MPMCS-style fault prioritisation.
#pragma once

#include <vector>

#include "ft/cut_set.hpp"
#include "ft/fault_tree.hpp"

namespace fta::analysis {

struct EventImportance {
  ft::EventIndex event = 0;
  double birnbaum = 0.0;
  double criticality = 0.0;
  double fussell_vesely = 0.0;
  double raw = 0.0;  ///< Risk achievement worth; >= 1 for relevant events.
  double rrw = 0.0;  ///< Risk reduction worth; infinity for pure SPOF mixes.
};

/// Computes all three measures for every basic event. `mcs` must be the
/// complete family of minimal cut sets (for the Fussell-Vesely numerator).
std::vector<EventImportance> importance_measures(
    const ft::FaultTree& tree, const std::vector<ft::CutSet>& mcs);

/// Events sorted by descending Birnbaum importance.
std::vector<EventImportance> ranked_by_birnbaum(
    const ft::FaultTree& tree, const std::vector<ft::CutSet>& mcs);

}  // namespace fta::analysis
