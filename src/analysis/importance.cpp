#include "analysis/importance.hpp"

#include <algorithm>
#include <limits>

#include "analysis/quantitative.hpp"
#include "bdd/fta_bdd.hpp"

namespace fta::analysis {

std::vector<EventImportance> importance_measures(
    const ft::FaultTree& tree, const std::vector<ft::CutSet>& mcs) {
  // One BDD; conditional probabilities by re-evaluating with p(e) pinned.
  // (Probability evaluation is linear in BDD size, so this is cheap
  // relative to construction.)
  bdd::FaultTreeBdd analysis(tree);
  const double p_top = analysis.top_probability();

  // Working copy to pin probabilities (FaultTreeBdd holds its own copy of
  // level probabilities, so mutate a cloned tree instead).
  ft::FaultTree scratch = tree;

  std::vector<EventImportance> out;
  out.reserve(tree.num_events());
  for (ft::EventIndex e = 0; e < tree.num_events(); ++e) {
    EventImportance imp;
    imp.event = e;
    const double p_e = tree.event_probability(e);

    scratch.set_event_probability(e, 1.0);
    const double p_with = top_event_probability(scratch);
    scratch.set_event_probability(e, 0.0);
    const double p_without = top_event_probability(scratch);
    scratch.set_event_probability(e, p_e);

    imp.birnbaum = p_with - p_without;
    imp.criticality = p_top > 0.0 ? imp.birnbaum * p_e / p_top : 0.0;
    imp.raw = p_top > 0.0 ? p_with / p_top : 0.0;
    imp.rrw = p_without > 0.0
                  ? p_top / p_without
                  : std::numeric_limits<double>::infinity();

    double fv_num = 0.0;
    for (const auto& cs : mcs) {
      if (cs.contains(e)) fv_num += cs.probability(tree);
    }
    imp.fussell_vesely = p_top > 0.0 ? fv_num / p_top : 0.0;

    out.push_back(imp);
  }
  return out;
}

std::vector<EventImportance> ranked_by_birnbaum(
    const ft::FaultTree& tree, const std::vector<ft::CutSet>& mcs) {
  auto measures = importance_measures(tree, mcs);
  std::stable_sort(measures.begin(), measures.end(),
                   [](const EventImportance& a, const EventImportance& b) {
                     return a.birnbaum > b.birnbaum;
                   });
  return measures;
}

}  // namespace fta::analysis
