// Zero-suppressed BDDs representing families of sets, and Rauzy's
// minimal-solutions extraction from a (coherent) BDD.
//
// A ZBDD node (x, hi, lo) represents: {S ∪ {x} : S ∈ hi} ∪ lo. Terminal 0
// is the empty family; terminal 1 is {∅}. The zero-suppression rule
// (hi == 0 collapses to lo) makes sparse set families compact — ideal for
// cut sets, which are tiny compared to the variable count.
//
// Provided operations: union, subsumption-removal ("without": drop from A
// every set that is a superset of some set in B), Rauzy minsol (BDD ->
// family of minimal solutions), counting, enumeration, and the
// maximum-probability set query that makes the BDD-based MPMCS baseline.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "bdd/bdd.hpp"

namespace fta::bdd {

using ZRef = std::uint32_t;
inline constexpr ZRef kEmptyFamily = 0;  ///< No sets at all.
inline constexpr ZRef kUnitFamily = 1;   ///< The family {∅}.

struct ZNode {
  Level level;
  ZRef lo;  ///< Sets not containing the level variable.
  ZRef hi;  ///< Sets containing it (variable stripped).
};

class ZbddManager {
 public:
  explicit ZbddManager(std::uint32_t num_levels);

  std::uint32_t num_levels() const noexcept { return num_levels_; }
  const ZNode& node(ZRef r) const { return nodes_[r]; }
  bool is_terminal(ZRef r) const noexcept { return r <= 1; }

  /// Family containing the single set {level}.
  ZRef singleton(Level level);

  ZRef unite(ZRef a, ZRef b);

  /// Removes from `a` every set that is a superset of (or equal to) some
  /// set in `b`.
  ZRef without(ZRef a, ZRef b);

  /// Rauzy's algorithm: the family of minimal solutions (minimal cut sets
  /// for a fault-tree top event) of a *coherent* function given as a BDD
  /// in the same level order.
  ZRef minsol(BddManager& bdd, BddRef f);

  /// Number of sets in the family (double to tolerate astronomically many).
  double count(ZRef f);

  /// Invokes `cb` for each set (as a vector of levels, ascending) until
  /// all sets are listed or `max_sets` were produced. Returns the number
  /// produced.
  std::size_t enumerate(ZRef f, std::size_t max_sets,
                        const std::function<void(const std::vector<Level>&)>& cb);

  struct BestSet {
    double probability = -1.0;
    std::vector<Level> set;
  };

  /// The member set maximising the product of per-level probabilities —
  /// i.e. the MPMCS when `f` is the minimal-cut-set family. nullopt for
  /// the empty family.
  std::optional<BestSet> best_probability(ZRef f,
                                          const std::vector<double>& level_prob);

  std::size_t size(ZRef f) const;

 private:
  ZRef make_node(Level level, ZRef lo, ZRef hi);

  std::uint32_t num_levels_;
  std::vector<ZNode> nodes_;
  std::unordered_map<std::uint64_t, ZRef> unique_;
  std::unordered_map<std::uint64_t, ZRef> union_cache_;
  std::unordered_map<std::uint64_t, ZRef> without_cache_;
  std::unordered_map<BddRef, ZRef> minsol_cache_;
};

}  // namespace fta::bdd
