#include "bdd/zbdd.hpp"

#include <cassert>
#include <stdexcept>

namespace fta::bdd {

namespace {

constexpr ZRef kMaxNodes = 1u << 22;

constexpr std::uint64_t node_key(Level level, ZRef lo, ZRef hi) {
  return (static_cast<std::uint64_t>(level) << 44) |
         (static_cast<std::uint64_t>(lo) << 22) | hi;
}

constexpr std::uint64_t pair_key(ZRef a, ZRef b) {
  return (static_cast<std::uint64_t>(a) << 22) | b;
}

}  // namespace

ZbddManager::ZbddManager(std::uint32_t num_levels) : num_levels_(num_levels) {
  nodes_.push_back(ZNode{num_levels_, kEmptyFamily, kEmptyFamily});  // 0
  nodes_.push_back(ZNode{num_levels_, kUnitFamily, kUnitFamily});    // 1
}

ZRef ZbddManager::make_node(Level level, ZRef lo, ZRef hi) {
  if (hi == kEmptyFamily) return lo;  // zero-suppression rule
  const std::uint64_t key = node_key(level, lo, hi);
  auto it = unique_.find(key);
  if (it != unique_.end()) return it->second;
  if (nodes_.size() >= kMaxNodes) {
    throw std::runtime_error("ZbddManager: node limit exceeded");
  }
  nodes_.push_back(ZNode{level, lo, hi});
  const auto ref = static_cast<ZRef>(nodes_.size() - 1);
  unique_.emplace(key, ref);
  return ref;
}

ZRef ZbddManager::singleton(Level level) {
  return make_node(level, kEmptyFamily, kUnitFamily);
}

ZRef ZbddManager::unite(ZRef a, ZRef b) {
  if (a == kEmptyFamily || a == b) return b;
  if (b == kEmptyFamily) return a;
  if (a > b) std::swap(a, b);
  const std::uint64_t key = pair_key(a, b);
  if (auto it = union_cache_.find(key); it != union_cache_.end()) {
    return it->second;
  }
  ZRef out;
  const Level la = nodes_[a].level;
  const Level lb = nodes_[b].level;
  if (la < lb) {
    out = make_node(la, unite(nodes_[a].lo, b), nodes_[a].hi);
  } else if (lb < la) {
    out = make_node(lb, unite(a, nodes_[b].lo), nodes_[b].hi);
  } else {
    out = make_node(la, unite(nodes_[a].lo, nodes_[b].lo),
                    unite(nodes_[a].hi, nodes_[b].hi));
  }
  union_cache_.emplace(key, out);
  return out;
}

ZRef ZbddManager::without(ZRef a, ZRef b) {
  if (b == kEmptyFamily || a == kEmptyFamily) return a;
  if (b == kUnitFamily) return kEmptyFamily;  // every set ⊇ ∅
  if (a == kUnitFamily) return a;  // ∅ is a superset only of ∅ (handled)
  if (a == b) return kEmptyFamily;
  const std::uint64_t key = pair_key(a, b);
  if (auto it = without_cache_.find(key); it != without_cache_.end()) {
    return it->second;
  }
  const Level la = nodes_[a].level;
  const Level lb = nodes_[b].level;
  ZRef out;
  if (lb < la) {
    // No set of `a` contains b's top variable; only b-sets without it can
    // subsume anything in `a`.
    out = without(a, nodes_[b].lo);
  } else if (la < lb) {
    // S ∪ {x}: x does not occur in b's sets, so subsumption is decided by
    // S alone; similarly for sets without x.
    out = make_node(la, without(nodes_[a].lo, b), without(nodes_[a].hi, b));
  } else {
    // Same top variable x. A set S∪{x} (from a.hi) is a superset of T∈b.lo
    // (T has no x, T ⊆ S∪{x} iff T ⊆ S) or of T'∪{x} (T' ∈ b.hi, iff
    // T' ⊆ S). Sets without x can only be subsumed by b.lo.
    const ZRef hi = without(without(nodes_[a].hi, nodes_[b].lo), nodes_[b].hi);
    const ZRef lo = without(nodes_[a].lo, nodes_[b].lo);
    out = make_node(la, lo, hi);
  }
  without_cache_.emplace(key, out);
  return out;
}

ZRef ZbddManager::minsol(BddManager& bdd, BddRef f) {
  if (f == kFalse) return kEmptyFamily;
  if (f == kTrue) return kUnitFamily;
  if (auto it = minsol_cache_.find(f); it != minsol_cache_.end()) {
    return it->second;
  }
  const BddNode& n = bdd.node(f);
  const ZRef z0 = minsol(bdd, n.lo);
  const ZRef z1_all = minsol(bdd, n.hi);
  // A minimal solution through x=1 must not already be a solution with
  // x=0, i.e. must not subsume a minimal solution of the lo-cofactor.
  const ZRef z1 = without(z1_all, z0);
  const ZRef out = make_node(n.level, z0, z1);
  minsol_cache_.emplace(f, out);
  return out;
}

double ZbddManager::count(ZRef f) {
  std::unordered_map<ZRef, double> memo;
  memo.emplace(kEmptyFamily, 0.0);
  memo.emplace(kUnitFamily, 1.0);
  std::vector<std::pair<ZRef, bool>> stack{{f, false}};
  while (!stack.empty()) {
    auto [r, expanded] = stack.back();
    stack.pop_back();
    if (memo.count(r)) continue;
    const ZNode& n = nodes_[r];
    if (!expanded) {
      stack.push_back({r, true});
      if (!memo.count(n.lo)) stack.push_back({n.lo, false});
      if (!memo.count(n.hi)) stack.push_back({n.hi, false});
      continue;
    }
    memo.emplace(r, memo.at(n.lo) + memo.at(n.hi));
  }
  return memo.at(f);
}

std::size_t ZbddManager::enumerate(
    ZRef f, std::size_t max_sets,
    const std::function<void(const std::vector<Level>&)>& cb) {
  std::size_t produced = 0;
  std::vector<Level> current;
  // Recursive DFS via explicit lambda (families are shallow: depth <=
  // num_levels, but sets are sparse so recursion over hi-chains is short).
  std::function<void(ZRef)> go = [&](ZRef r) {
    if (produced >= max_sets) return;
    if (r == kEmptyFamily) return;
    if (r == kUnitFamily) {
      cb(current);
      ++produced;
      return;
    }
    const ZNode& n = nodes_[r];
    current.push_back(n.level);
    go(n.hi);
    current.pop_back();
    go(n.lo);
  };
  go(f);
  return produced;
}

std::optional<ZbddManager::BestSet> ZbddManager::best_probability(
    ZRef f, const std::vector<double>& level_prob) {
  if (f == kEmptyFamily) return std::nullopt;
  // DP over the DAG: best(r) = max(best(lo), p[level] * best(hi)).
  // -1 marks "no set".
  std::unordered_map<ZRef, double> best;
  best.emplace(kEmptyFamily, -1.0);
  best.emplace(kUnitFamily, 1.0);
  std::vector<std::pair<ZRef, bool>> stack{{f, false}};
  while (!stack.empty()) {
    auto [r, expanded] = stack.back();
    stack.pop_back();
    if (best.count(r)) continue;
    const ZNode& n = nodes_[r];
    if (!expanded) {
      stack.push_back({r, true});
      if (!best.count(n.lo)) stack.push_back({n.lo, false});
      if (!best.count(n.hi)) stack.push_back({n.hi, false});
      continue;
    }
    const double via_hi =
        best.at(n.hi) < 0 ? -1.0 : level_prob.at(n.level) * best.at(n.hi);
    best.emplace(r, std::max(best.at(n.lo), via_hi));
  }

  // Reconstruct one optimal set by walking the argmax choices.
  BestSet out;
  out.probability = best.at(f);
  ZRef r = f;
  while (!is_terminal(r)) {
    const ZNode& n = nodes_[r];
    const double via_hi =
        best.at(n.hi) < 0 ? -1.0 : level_prob.at(n.level) * best.at(n.hi);
    if (via_hi >= best.at(n.lo)) {
      out.set.push_back(n.level);
      r = n.hi;
    } else {
      r = n.lo;
    }
  }
  return out;
}

std::size_t ZbddManager::size(ZRef f) const {
  std::unordered_map<ZRef, bool> seen;
  std::vector<ZRef> stack{f};
  while (!stack.empty()) {
    const ZRef r = stack.back();
    stack.pop_back();
    if (seen.count(r)) continue;
    seen.emplace(r, true);
    if (!is_terminal(r)) {
      stack.push_back(nodes_[r].lo);
      stack.push_back(nodes_[r].hi);
    }
  }
  return seen.size();
}

}  // namespace fta::bdd
