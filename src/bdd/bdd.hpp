// Reduced Ordered Binary Decision Diagrams.
//
// The substrate for the paper's stated future-work comparison ("evaluate
// different representation techniques (e.g. BDDs) to address the MPMCS
// problem") and for exact quantitative FTA (top-event probability by
// Shannon decomposition).
//
// Variables are levels: the manager orders variables by their index, so
// callers control the ordering by permuting variables before building
// (see fta_bdd.hpp for the fault-tree frontend, which uses DFS order).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "logic/formula.hpp"

namespace fta::bdd {

using BddRef = std::uint32_t;
inline constexpr BddRef kFalse = 0;
inline constexpr BddRef kTrue = 1;

/// Variables are levels 0..n-1; smaller level = closer to the root.
using Level = std::uint32_t;

struct BddNode {
  Level level;
  BddRef lo;  ///< Cofactor with the level variable false.
  BddRef hi;  ///< Cofactor with the level variable true.
};

struct BddStats {
  std::size_t nodes = 0;         ///< Live nodes in the manager.
  std::size_t cache_hits = 0;
  std::size_t cache_lookups = 0;
};

class BddManager {
 public:
  explicit BddManager(std::uint32_t num_levels);

  std::uint32_t num_levels() const noexcept { return num_levels_; }

  /// The single-variable function for `level`.
  BddRef var(Level level);

  BddRef land(BddRef a, BddRef b);
  BddRef lor(BddRef a, BddRef b);
  BddRef lnot(BddRef a);
  BddRef ite(BddRef f, BddRef g, BddRef h);

  /// g(x) = f(¬x): complements every input (swaps lo/hi throughout).
  /// Turns the antitone success function ¬f into a monotone function of
  /// the complemented variables — the path-set trick.
  BddRef flip_inputs(BddRef f);

  /// AtLeast-k over operands (voting gates) without materialising the
  /// exponential expansion: dynamic programming over (index, needed).
  BddRef at_least(std::uint32_t k, const std::vector<BddRef>& operands);

  /// Builds the BDD of a monotone/general formula. `var_to_level` maps
  /// formula variables to BDD levels (identity if empty).
  BddRef build(const logic::FormulaStore& store, logic::NodeId root,
               const std::vector<Level>& var_to_level = {});

  const BddNode& node(BddRef r) const { return nodes_[r]; }
  bool is_terminal(BddRef r) const noexcept { return r <= 1; }

  /// Probability that the function is true when level i's variable is
  /// independently true with probability level_prob[i] (Shannon).
  double probability(BddRef f, const std::vector<double>& level_prob);

  /// Number of satisfying assignments over all num_levels() variables.
  /// Returns infinity-saturated double to avoid overflow on wide BDDs.
  double count_models(BddRef f);

  /// Nodes reachable from f (including terminals).
  std::size_t size(BddRef f) const;

  const BddStats& stats() const noexcept { return stats_; }

 private:
  BddRef make_node(Level level, BddRef lo, BddRef hi);

  std::uint32_t num_levels_;
  std::vector<BddNode> nodes_;
  std::unordered_map<std::uint64_t, BddRef> unique_;
  std::unordered_map<std::uint64_t, BddRef> op_cache_;
  BddStats stats_;
};

}  // namespace fta::bdd
