#include "bdd/bdd.hpp"

#include <cassert>
#include <stdexcept>

namespace fta::bdd {

namespace {

// Node references are capped so (level, lo, hi) and (op, a, b) triples pack
// into 64-bit cache keys exactly (no lossy hashing).
constexpr BddRef kMaxNodes = 1u << 22;        // ~4.2M nodes
constexpr std::uint32_t kMaxLevels = 1u << 19;
// The operation cache grows with the number of distinct (op, a, b) pairs
// explored, which can exceed the node count by orders of magnitude on
// blow-up instances; bound it so failure is an exception, not an OOM kill.
constexpr std::size_t kMaxCacheEntries = std::size_t{1} << 23;

enum Op : std::uint64_t { kOpAnd = 1, kOpOr = 2, kOpNot = 3, kOpFlip = 4 };

constexpr std::uint64_t node_key(Level level, BddRef lo, BddRef hi) {
  return (static_cast<std::uint64_t>(level) << 44) |
         (static_cast<std::uint64_t>(lo) << 22) | hi;
}

constexpr std::uint64_t op_key(Op op, BddRef a, BddRef b) {
  return (static_cast<std::uint64_t>(op) << 44) |
         (static_cast<std::uint64_t>(a) << 22) | b;
}

}  // namespace

BddManager::BddManager(std::uint32_t num_levels) : num_levels_(num_levels) {
  if (num_levels >= kMaxLevels) {
    throw std::runtime_error("BddManager: too many levels");
  }
  // Terminals live at a pseudo-level below every real variable.
  nodes_.push_back(BddNode{num_levels_, kFalse, kFalse});  // 0 = false
  nodes_.push_back(BddNode{num_levels_, kTrue, kTrue});    // 1 = true
}

BddRef BddManager::make_node(Level level, BddRef lo, BddRef hi) {
  if (lo == hi) return lo;  // reduction rule
  const std::uint64_t key = node_key(level, lo, hi);
  auto it = unique_.find(key);
  if (it != unique_.end()) return it->second;
  if (nodes_.size() >= kMaxNodes || op_cache_.size() >= kMaxCacheEntries) {
    throw std::runtime_error("BddManager: node/cache limit exceeded");
  }
  nodes_.push_back(BddNode{level, lo, hi});
  const auto ref = static_cast<BddRef>(nodes_.size() - 1);
  unique_.emplace(key, ref);
  stats_.nodes = nodes_.size();
  return ref;
}

BddRef BddManager::var(Level level) {
  assert(level < num_levels_);
  return make_node(level, kFalse, kTrue);
}

BddRef BddManager::land(BddRef a, BddRef b) {
  if (a == kFalse || b == kFalse) return kFalse;
  if (a == kTrue) return b;
  if (b == kTrue) return a;
  if (a == b) return a;
  if (a > b) std::swap(a, b);
  const std::uint64_t key = op_key(kOpAnd, a, b);
  ++stats_.cache_lookups;
  if (auto it = op_cache_.find(key); it != op_cache_.end()) {
    ++stats_.cache_hits;
    return it->second;
  }
  // Copies, not references: the recursive calls below can grow nodes_
  // and reallocate it from under a reference (heap-use-after-free).
  const BddNode na = nodes_[a];
  const BddNode nb = nodes_[b];
  const Level level = std::min(na.level, nb.level);
  const BddRef a_lo = na.level == level ? na.lo : a;
  const BddRef a_hi = na.level == level ? na.hi : a;
  const BddRef b_lo = nb.level == level ? nb.lo : b;
  const BddRef b_hi = nb.level == level ? nb.hi : b;
  const BddRef out =
      make_node(level, land(a_lo, b_lo), land(a_hi, b_hi));
  op_cache_.emplace(key, out);
  return out;
}

BddRef BddManager::lor(BddRef a, BddRef b) {
  if (a == kTrue || b == kTrue) return kTrue;
  if (a == kFalse) return b;
  if (b == kFalse) return a;
  if (a == b) return a;
  if (a > b) std::swap(a, b);
  const std::uint64_t key = op_key(kOpOr, a, b);
  ++stats_.cache_lookups;
  if (auto it = op_cache_.find(key); it != op_cache_.end()) {
    ++stats_.cache_hits;
    return it->second;
  }
  // Copies, not references: the recursive calls below can grow nodes_
  // and reallocate it from under a reference (heap-use-after-free).
  const BddNode na = nodes_[a];
  const BddNode nb = nodes_[b];
  const Level level = std::min(na.level, nb.level);
  const BddRef a_lo = na.level == level ? na.lo : a;
  const BddRef a_hi = na.level == level ? na.hi : a;
  const BddRef b_lo = nb.level == level ? nb.lo : b;
  const BddRef b_hi = nb.level == level ? nb.hi : b;
  const BddRef out = make_node(level, lor(a_lo, b_lo), lor(a_hi, b_hi));
  op_cache_.emplace(key, out);
  return out;
}

BddRef BddManager::lnot(BddRef a) {
  if (a == kFalse) return kTrue;
  if (a == kTrue) return kFalse;
  const std::uint64_t key = op_key(kOpNot, a, 0);
  ++stats_.cache_lookups;
  if (auto it = op_cache_.find(key); it != op_cache_.end()) {
    ++stats_.cache_hits;
    return it->second;
  }
  const BddNode n = nodes_[a];  // copy: recursion below may grow nodes_
  const BddRef out = make_node(n.level, lnot(n.lo), lnot(n.hi));
  op_cache_.emplace(key, out);
  return out;
}

BddRef BddManager::ite(BddRef f, BddRef g, BddRef h) {
  return lor(land(f, g), land(lnot(f), h));
}

BddRef BddManager::flip_inputs(BddRef f) {
  if (is_terminal(f)) return f;
  const std::uint64_t key = op_key(kOpFlip, f, 0);
  ++stats_.cache_lookups;
  if (auto it = op_cache_.find(key); it != op_cache_.end()) {
    ++stats_.cache_hits;
    return it->second;
  }
  const BddNode n = nodes_[f];  // copy: recursion below may grow nodes_
  const BddRef out =
      make_node(n.level, flip_inputs(n.hi), flip_inputs(n.lo));
  op_cache_.emplace(key, out);
  return out;
}

BddRef BddManager::at_least(std::uint32_t k,
                            const std::vector<BddRef>& operands) {
  const std::size_t n = operands.size();
  if (k == 0) return kTrue;
  if (k > n) return kFalse;
  // table[j] holds "at least j of operands[i..)" for the current suffix;
  // swept right-to-left (j descending so updates read the previous row).
  std::vector<BddRef> table(k + 1, kFalse);
  table[0] = kTrue;
  for (std::size_t i = n; i-- > 0;) {
    for (std::uint32_t j = std::min<std::size_t>(k, n - i); j >= 1; --j) {
      table[j] = lor(land(operands[i], table[j - 1]), table[j]);
    }
  }
  return table[k];
}

BddRef BddManager::build(const logic::FormulaStore& store, logic::NodeId root,
                         const std::vector<Level>& var_to_level) {
  std::unordered_map<logic::NodeId, BddRef> memo;
  // Children-first iterative translation (deep formulas must not overflow
  // the call stack).
  std::vector<std::pair<logic::NodeId, bool>> stack{{root, false}};
  while (!stack.empty()) {
    auto [id, expanded] = stack.back();
    stack.pop_back();
    if (memo.count(id)) continue;
    const logic::FormulaNode& n = store.node(id);
    if (!expanded) {
      stack.push_back({id, true});
      for (logic::NodeId c : n.children) {
        if (!memo.count(c)) stack.push_back({c, false});
      }
      continue;
    }
    std::vector<BddRef> kids;
    kids.reserve(n.children.size());
    for (logic::NodeId c : n.children) kids.push_back(memo.at(c));
    BddRef out = kFalse;
    switch (n.kind) {
      case logic::NodeKind::False: out = kFalse; break;
      case logic::NodeKind::True: out = kTrue; break;
      case logic::NodeKind::Var: {
        const Level level = var_to_level.empty()
                                ? static_cast<Level>(n.payload)
                                : var_to_level.at(n.payload);
        out = var(level);
        break;
      }
      case logic::NodeKind::Not:
        out = lnot(kids[0]);
        break;
      case logic::NodeKind::And:
        out = kTrue;
        for (BddRef k : kids) out = land(out, k);
        break;
      case logic::NodeKind::Or:
        out = kFalse;
        for (BddRef k : kids) out = lor(out, k);
        break;
      case logic::NodeKind::AtLeast:
        out = at_least(n.payload, kids);
        break;
    }
    memo.emplace(id, out);
  }
  return memo.at(root);
}

double BddManager::probability(BddRef f,
                               const std::vector<double>& level_prob) {
  std::unordered_map<BddRef, double> memo;
  memo.emplace(kFalse, 0.0);
  memo.emplace(kTrue, 1.0);
  std::vector<std::pair<BddRef, bool>> stack{{f, false}};
  while (!stack.empty()) {
    auto [r, expanded] = stack.back();
    stack.pop_back();
    if (memo.count(r)) continue;
    const BddNode& n = nodes_[r];
    if (!expanded) {
      stack.push_back({r, true});
      if (!memo.count(n.lo)) stack.push_back({n.lo, false});
      if (!memo.count(n.hi)) stack.push_back({n.hi, false});
      continue;
    }
    const double p = level_prob.at(n.level);
    memo.emplace(r, p * memo.at(n.hi) + (1.0 - p) * memo.at(n.lo));
  }
  return memo.at(f);
}

double BddManager::count_models(BddRef f) {
  const std::vector<double> half(num_levels_, 0.5);
  double scale = 1.0;
  for (std::uint32_t i = 0; i < num_levels_; ++i) scale *= 2.0;
  return probability(f, half) * scale;
}

std::size_t BddManager::size(BddRef f) const {
  std::unordered_map<BddRef, bool> seen;
  std::vector<BddRef> stack{f};
  while (!stack.empty()) {
    const BddRef r = stack.back();
    stack.pop_back();
    if (seen.count(r)) continue;
    seen.emplace(r, true);
    if (!is_terminal(r)) {
      stack.push_back(nodes_[r].lo);
      stack.push_back(nodes_[r].hi);
    }
  }
  return seen.size();
}

}  // namespace fta::bdd
