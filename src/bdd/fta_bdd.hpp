// BDD-based fault-tree analysis: the classical baseline the paper names
// as future-work comparison, plus exact quantification.
//
//   FaultTreeBdd analysis(tree);
//   double p       = analysis.top_probability();       // exact
//   auto mcs       = analysis.minimal_cut_sets(10000);  // all MCSs
//   auto [cut, pr] = *analysis.mpmcs();                 // BDD-based MPMCS
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "bdd/bdd.hpp"
#include "bdd/zbdd.hpp"
#include "ft/cut_set.hpp"
#include "ft/fault_tree.hpp"

namespace fta::bdd {

enum class VariableOrder {
  /// Events ordered by their EventIndex (insertion order).
  Insertion,
  /// Events ordered by first appearance in a depth-first traversal from
  /// the top — the classic FTA heuristic; usually much smaller BDDs.
  Dfs,
};

class FaultTreeBdd {
 public:
  explicit FaultTreeBdd(const ft::FaultTree& tree,
                        VariableOrder order = VariableOrder::Dfs);

  /// Exact top-event probability (Shannon decomposition).
  double top_probability();

  /// All minimal cut sets (up to `max_sets`), via Rauzy minsol.
  std::vector<ft::CutSet> minimal_cut_sets(std::size_t max_sets = 1'000'000);

  /// Number of minimal cut sets (may exceed what enumerate would return).
  double mcs_count();

  /// The maximum-probability MCS and its probability, straight off the
  /// minimal-solutions ZBDD (no enumeration).
  std::optional<std::pair<ft::CutSet, double>> mpmcs();

  // --- parameterized queries (probabilities supplied per call) ----------
  // The BDD/ZBDD structure is probability-independent, so sweeps and
  // Monte Carlo sampling re-evaluate in linear time per sample.

  /// Top probability under alternative event probabilities.
  double top_probability_with(const std::vector<double>& event_probs);

  /// MPMCS under alternative event probabilities.
  std::optional<std::pair<ft::CutSet, double>> mpmcs_with(
      const std::vector<double>& event_probs);

  // --- path sets (the dual notion) ---------------------------------------

  /// Minimal path sets: minimal sets of events whose joint NON-occurrence
  /// guarantees the top event cannot occur (minimal solutions of the
  /// success function over complemented variables).
  std::vector<ft::CutSet> minimal_path_sets(std::size_t max_sets = 1'000'000);

  double path_set_count();

  /// The most reliable path set: argmax of prod (1 - p(e)) over minimal
  /// path sets — the cheapest set of components that, kept healthy,
  /// keeps the system up.
  std::optional<std::pair<ft::CutSet, double>> most_probable_path_set();

  std::size_t bdd_size() { return bdd_.size(top_); }
  std::size_t zbdd_size() { return zbdd_.size(mcs_family()); }

 private:
  ZRef mcs_family();
  ZRef path_family();
  std::vector<double> to_level_probs(const std::vector<double>& event_probs) const;

  const ft::FaultTree& tree_;
  std::vector<Level> event_to_level_;
  std::vector<ft::EventIndex> level_to_event_;
  std::vector<double> level_prob_;
  BddManager bdd_;
  ZbddManager zbdd_;
  BddRef top_;
  std::optional<ZRef> mcs_;
  std::optional<ZRef> paths_;
};

}  // namespace fta::bdd
