#include "bdd/fta_bdd.hpp"

#include <cassert>

namespace fta::bdd {

namespace {

/// Event order by first appearance in a DFS from the top.
std::vector<Level> dfs_levels(const ft::FaultTree& tree) {
  std::vector<Level> event_to_level(tree.num_events(), 0);
  std::vector<bool> assigned(tree.num_events(), false);
  Level next = 0;
  std::vector<ft::NodeIndex> stack{tree.top()};
  std::vector<bool> visited(tree.num_nodes(), false);
  while (!stack.empty()) {
    const ft::NodeIndex id = stack.back();
    stack.pop_back();
    if (visited[id]) continue;
    visited[id] = true;
    const ft::Node& n = tree.node(id);
    if (n.type == ft::NodeType::BasicEvent) {
      if (!assigned[n.event_index]) {
        assigned[n.event_index] = true;
        event_to_level[n.event_index] = next++;
      }
      continue;
    }
    // Push children in reverse so they pop left-to-right.
    for (auto it = n.children.rbegin(); it != n.children.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  // Events unreachable from the top still need levels.
  for (ft::EventIndex e = 0; e < tree.num_events(); ++e) {
    if (!assigned[e]) event_to_level[e] = next++;
  }
  return event_to_level;
}

}  // namespace

FaultTreeBdd::FaultTreeBdd(const ft::FaultTree& tree, VariableOrder order)
    : tree_(tree),
      bdd_(static_cast<std::uint32_t>(tree.num_events())),
      zbdd_(static_cast<std::uint32_t>(tree.num_events())),
      top_(kFalse) {
  tree.validate();
  const auto n = static_cast<std::uint32_t>(tree.num_events());
  if (order == VariableOrder::Dfs) {
    event_to_level_ = dfs_levels(tree);
  } else {
    event_to_level_.resize(n);
    for (Level i = 0; i < n; ++i) event_to_level_[i] = i;
  }
  level_to_event_.resize(n);
  level_prob_.resize(n);
  for (ft::EventIndex e = 0; e < n; ++e) {
    level_to_event_[event_to_level_[e]] = e;
    level_prob_[event_to_level_[e]] = tree.event_probability(e);
  }

  logic::FormulaStore store;
  const logic::NodeId f = tree.to_formula(store);
  top_ = bdd_.build(store, f, event_to_level_);
}

double FaultTreeBdd::top_probability() {
  return bdd_.probability(top_, level_prob_);
}

ZRef FaultTreeBdd::mcs_family() {
  if (!mcs_) mcs_ = zbdd_.minsol(bdd_, top_);
  return *mcs_;
}

std::vector<ft::CutSet> FaultTreeBdd::minimal_cut_sets(std::size_t max_sets) {
  std::vector<ft::CutSet> out;
  zbdd_.enumerate(mcs_family(), max_sets,
                  [&](const std::vector<Level>& levels) {
                    std::vector<ft::EventIndex> events;
                    events.reserve(levels.size());
                    for (Level l : levels) events.push_back(level_to_event_[l]);
                    out.emplace_back(std::move(events));
                  });
  return out;
}

double FaultTreeBdd::mcs_count() { return zbdd_.count(mcs_family()); }

std::optional<std::pair<ft::CutSet, double>> FaultTreeBdd::mpmcs() {
  const auto best = zbdd_.best_probability(mcs_family(), level_prob_);
  if (!best) return std::nullopt;
  std::vector<ft::EventIndex> events;
  events.reserve(best->set.size());
  for (Level l : best->set) events.push_back(level_to_event_[l]);
  return std::make_pair(ft::CutSet(std::move(events)), best->probability);
}

std::vector<double> FaultTreeBdd::to_level_probs(
    const std::vector<double>& event_probs) const {
  std::vector<double> by_level(level_prob_.size(), 0.0);
  for (ft::EventIndex e = 0; e < event_probs.size() && e < event_to_level_.size();
       ++e) {
    by_level[event_to_level_[e]] = event_probs[e];
  }
  return by_level;
}

double FaultTreeBdd::top_probability_with(
    const std::vector<double>& event_probs) {
  return bdd_.probability(top_, to_level_probs(event_probs));
}

std::optional<std::pair<ft::CutSet, double>> FaultTreeBdd::mpmcs_with(
    const std::vector<double>& event_probs) {
  const auto best =
      zbdd_.best_probability(mcs_family(), to_level_probs(event_probs));
  if (!best) return std::nullopt;
  std::vector<ft::EventIndex> events;
  events.reserve(best->set.size());
  for (Level l : best->set) events.push_back(level_to_event_[l]);
  return std::make_pair(ft::CutSet(std::move(events)), best->probability);
}

ZRef FaultTreeBdd::path_family() {
  if (!paths_) {
    // Success function ¬f is monotone in the complemented inputs; its
    // minimal solutions over y = ¬x are exactly the minimal path sets.
    const BddRef success_flipped = bdd_.flip_inputs(bdd_.lnot(top_));
    paths_ = zbdd_.minsol(bdd_, success_flipped);
  }
  return *paths_;
}

std::vector<ft::CutSet> FaultTreeBdd::minimal_path_sets(std::size_t max_sets) {
  std::vector<ft::CutSet> out;
  zbdd_.enumerate(path_family(), max_sets,
                  [&](const std::vector<Level>& levels) {
                    std::vector<ft::EventIndex> events;
                    events.reserve(levels.size());
                    for (Level l : levels) events.push_back(level_to_event_[l]);
                    out.emplace_back(std::move(events));
                  });
  return out;
}

double FaultTreeBdd::path_set_count() { return zbdd_.count(path_family()); }

std::optional<std::pair<ft::CutSet, double>>
FaultTreeBdd::most_probable_path_set() {
  std::vector<double> survive(level_prob_.size());
  for (std::size_t l = 0; l < level_prob_.size(); ++l) {
    survive[l] = 1.0 - level_prob_[l];
  }
  const auto best = zbdd_.best_probability(path_family(), survive);
  if (!best) return std::nullopt;
  std::vector<ft::EventIndex> events;
  events.reserve(best->set.size());
  for (Level l : best->set) events.push_back(level_to_event_[l]);
  return std::make_pair(ft::CutSet(std::move(events)), best->probability);
}

}  // namespace fta::bdd
