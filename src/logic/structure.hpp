// Gate-map structure hints for the SAT core (circuit-aware solving).
//
// The fault tree *is* a circuit, but after Tseitin the solver sees flat
// CNF. This header carries the gate fan-in DAG out of the transformation
// as a first-class artefact: which variables are gate outputs, which
// halves of each definition were emitted (Plaisted–Greenbaum may drop
// one), each gate's depth below the asserted root, and which gates hold
// in every model. sat::Solver consumes it (install_structure) for
// root-biased depth-weighted activity seeding, forced-polarity phase
// initialization, a dedicated binary watch layer for the two-literal
// definition halves, and — when the hints exactly describe the clause
// set — gate-structural inprocessing (single-fanout chain collapse and
// equivalent-gate merging) before the first conflict.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "logic/lit.hpp"

namespace fta::logic {

/// How much of the gate map the SAT core may exploit. `Hints` covers the
/// always-sound heuristics (activity seeding, phase init, binary watch
/// layer); `Full` additionally runs gate-structural inprocessing, which
/// adds implied clauses and therefore requires hints that exactly match
/// the clause set (raw Tseitin output, not a preprocessed instance).
enum class StructureMode : std::uint8_t { Off, Hints, Full };

const char* structure_mode_name(StructureMode mode) noexcept;

/// One Tseitin gate definition. `pos_half` means the clauses for
/// g -> definition were emitted, `neg_half` the converse; polarity-aware
/// encoding may omit either. For Card gates the halves map to the
/// totalizer directions: pos = downward (g enforces the count),
/// neg = upward (the count implies g).
struct GateDef {
  enum class Kind : std::uint8_t { And, Or, Card };
  Var out = 0;
  Kind kind = Kind::And;
  bool pos_half = false;
  bool neg_half = false;
  /// True in every model of the asserted encoding (AND-only path from
  /// the asserted root).
  bool forced = false;
  /// AtLeast threshold (Card only).
  std::uint32_t k = 0;
  /// Child literals, in definition order.
  std::vector<Lit> fanin;
};

/// The packaged gate map, ready for sat::Solver::install_structure.
struct StructureHints {
  static constexpr std::uint32_t kNoDepth = 0xffffffffu;

  /// Gates in topological children-first order.
  std::vector<GateDef> gates;
  /// The asserted root literal (may be negative for a NOT root).
  Lit root = kNoLit;
  /// Formula variables are < this; gate/counting auxiliaries above.
  std::uint32_t num_input_vars = 0;
  /// Variable count of the emitted CNF (hint arrays are sized to it).
  std::uint32_t num_vars = 0;
  /// Per-variable depth below the root gate (root = 0, its fanin = 1,
  /// ...); kNoDepth for variables outside the gate DAG (e.g. totalizer
  /// counting auxiliaries).
  std::vector<std::uint32_t> depth;
};

using StructureHintsPtr = std::shared_ptr<const StructureHints>;

/// Packages a recorded gate list into hints: computes per-variable
/// depths by BFS over the fan-in DAG from the root. `gates` must be in
/// children-first order with `out` vars < `num_vars`.
StructureHints make_structure_hints(std::vector<GateDef> gates, Lit root,
                                    std::uint32_t num_input_vars,
                                    std::uint32_t num_vars);

}  // namespace fta::logic
