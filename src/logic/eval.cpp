#include "logic/eval.hpp"

#include <cassert>
#include <unordered_map>

namespace fta::logic {

namespace {

bool eval_rec(const FormulaStore& store, NodeId id,
              const std::vector<bool>& assignment,
              std::unordered_map<NodeId, bool>& memo) {
  if (auto it = memo.find(id); it != memo.end()) return it->second;
  const FormulaNode& n = store.node(id);
  bool out = false;
  switch (n.kind) {
    case NodeKind::False: out = false; break;
    case NodeKind::True: out = true; break;
    case NodeKind::Var:
      assert(n.payload < assignment.size());
      out = assignment[n.payload];
      break;
    case NodeKind::Not:
      out = !eval_rec(store, n.children[0], assignment, memo);
      break;
    case NodeKind::And:
      out = true;
      for (NodeId c : n.children) {
        if (!eval_rec(store, c, assignment, memo)) {
          out = false;
          break;
        }
      }
      break;
    case NodeKind::Or:
      out = false;
      for (NodeId c : n.children) {
        if (eval_rec(store, c, assignment, memo)) {
          out = true;
          break;
        }
      }
      break;
    case NodeKind::AtLeast: {
      std::uint32_t count = 0;
      for (NodeId c : n.children) {
        if (eval_rec(store, c, assignment, memo)) ++count;
      }
      out = count >= n.payload;
      break;
    }
  }
  memo.emplace(id, out);
  return out;
}

}  // namespace

bool eval(const FormulaStore& store, NodeId root,
          const std::vector<bool>& assignment) {
  std::unordered_map<NodeId, bool> memo;
  return eval_rec(store, root, assignment, memo);
}

std::uint64_t count_models(const FormulaStore& store, NodeId root,
                           std::uint32_t num_vars) {
  assert(num_vars <= 26 && "count_models is exhaustive; keep it small");
  std::uint64_t count = 0;
  std::vector<bool> assignment(num_vars, false);
  for (std::uint64_t mask = 0; mask < (1ULL << num_vars); ++mask) {
    for (std::uint32_t v = 0; v < num_vars; ++v) {
      assignment[v] = (mask >> v) & 1;
    }
    if (eval(store, root, assignment)) ++count;
  }
  return count;
}

bool equivalent(const FormulaStore& store, NodeId a, NodeId b,
                std::uint32_t num_vars) {
  assert(num_vars <= 26 && "equivalent is exhaustive; keep it small");
  std::vector<bool> assignment(num_vars, false);
  for (std::uint64_t mask = 0; mask < (1ULL << num_vars); ++mask) {
    for (std::uint32_t v = 0; v < num_vars; ++v) {
      assignment[v] = (mask >> v) & 1;
    }
    if (eval(store, a, assignment) != eval(store, b, assignment)) return false;
  }
  return true;
}

}  // namespace fta::logic
