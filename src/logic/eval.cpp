#include "logic/eval.hpp"

#include <cassert>
#include <unordered_map>

namespace fta::logic {

namespace {

bool eval_rec(const FormulaStore& store, NodeId id,
              const std::vector<bool>& assignment,
              std::unordered_map<NodeId, bool>& memo) {
  if (auto it = memo.find(id); it != memo.end()) return it->second;
  const FormulaNode& n = store.node(id);
  bool out = false;
  switch (n.kind) {
    case NodeKind::False: out = false; break;
    case NodeKind::True: out = true; break;
    case NodeKind::Var:
      assert(n.payload < assignment.size());
      out = assignment[n.payload];
      break;
    case NodeKind::Not:
      out = !eval_rec(store, n.children[0], assignment, memo);
      break;
    case NodeKind::And:
      out = true;
      for (NodeId c : n.children) {
        if (!eval_rec(store, c, assignment, memo)) {
          out = false;
          break;
        }
      }
      break;
    case NodeKind::Or:
      out = false;
      for (NodeId c : n.children) {
        if (eval_rec(store, c, assignment, memo)) {
          out = true;
          break;
        }
      }
      break;
    case NodeKind::AtLeast: {
      std::uint32_t count = 0;
      for (NodeId c : n.children) {
        if (eval_rec(store, c, assignment, memo)) ++count;
      }
      out = count >= n.payload;
      break;
    }
  }
  memo.emplace(id, out);
  return out;
}

}  // namespace

bool eval(const FormulaStore& store, NodeId root,
          const std::vector<bool>& assignment) {
  std::unordered_map<NodeId, bool> memo;
  return eval_rec(store, root, assignment, memo);
}

std::uint64_t count_models(const FormulaStore& store, NodeId root,
                           std::uint32_t num_vars) {
  assert(num_vars <= 26 && "count_models is exhaustive; keep it small");
  std::uint64_t count = 0;
  std::vector<bool> assignment(num_vars, false);
  for (std::uint64_t mask = 0; mask < (1ULL << num_vars); ++mask) {
    for (std::uint32_t v = 0; v < num_vars; ++v) {
      assignment[v] = (mask >> v) & 1;
    }
    if (eval(store, root, assignment)) ++count;
  }
  return count;
}

IncrementalEvaluator::IncrementalEvaluator(const FormulaStore& store,
                                           NodeId root,
                                           std::vector<bool> assignment)
    : assignment_(std::move(assignment)) {
  // Dense post-order (children before parents) over the reachable DAG.
  constexpr std::uint32_t kVisiting = 0xffffffffu;
  std::unordered_map<NodeId, std::uint32_t> dense;
  std::vector<NodeId> order;
  {
    std::vector<std::pair<NodeId, bool>> stack{{root, false}};
    while (!stack.empty()) {
      const auto [id, expanded] = stack.back();
      stack.pop_back();
      const auto it = dense.find(id);
      if (expanded) {
        it->second = static_cast<std::uint32_t>(order.size());
        order.push_back(id);
        continue;
      }
      if (it != dense.end()) continue;  // already visiting or finished
      dense.emplace(id, kVisiting);
      stack.emplace_back(id, true);
      for (const NodeId c : store.node(id).children) {
        if (!dense.count(c)) stack.emplace_back(c, false);
      }
    }
  }

  const std::size_t n = order.size();
  info_.resize(n);
  parents_.resize(n);
  val_.resize(n, 0);
  true_children_.resize(n, 0);
  root_index_ = dense.at(root);

  for (std::size_t i = 0; i < n; ++i) {
    const FormulaNode& node = store.node(order[i]);
    NodeInfo& info = info_[i];
    info.kind = node.kind;
    info.num_children = static_cast<std::uint32_t>(node.children.size());
    info.threshold = node.payload;  // k for AtLeast, var index for Var
    for (const NodeId c : node.children) {
      const std::uint32_t ci = dense.at(c);
      parents_[ci].push_back(static_cast<std::uint32_t>(i));
      if (val_[ci] != 0) ++true_children_[i];
    }
    if (node.kind == NodeKind::Var) {
      if (var_index_.size() <= node.payload) {
        var_index_.resize(node.payload + 1, -1);
      }
      var_index_[node.payload] = static_cast<std::int32_t>(i);
    }
    val_[i] = recompute(i) ? 1 : 0;
  }
}

bool IncrementalEvaluator::recompute(std::size_t idx) const {
  const NodeInfo& info = info_[idx];
  const std::uint32_t count = true_children_[idx];
  switch (info.kind) {
    case NodeKind::False: return false;
    case NodeKind::True: return true;
    case NodeKind::Var:
      assert(info.threshold < assignment_.size());
      return assignment_[info.threshold];
    case NodeKind::Not: return count == 0;
    case NodeKind::And: return count == info.num_children;
    case NodeKind::Or: return count > 0;
    case NodeKind::AtLeast: return count >= info.threshold;
  }
  return false;
}

void IncrementalEvaluator::set(Var v, bool value) {
  assert(v < assignment_.size());
  if (assignment_[v] == value) return;
  assignment_[v] = value;
  if (v >= var_index_.size() || var_index_[v] < 0) return;  // unused var
  const auto leaf = static_cast<std::uint32_t>(var_index_[v]);
  val_[leaf] = value ? 1 : 0;
  worklist_.clear();
  worklist_.emplace_back(leaf, value);
  // Each worklist entry is one flip event, with its direction captured at
  // flip time — a node re-flipping later is a fresh event, so parent
  // counts always see matched +1/-1 pairs.
  while (!worklist_.empty()) {
    const auto [idx, became_true] = worklist_.back();
    worklist_.pop_back();
    for (const std::uint32_t p : parents_[idx]) {
      if (became_true) {
        ++true_children_[p];
      } else {
        assert(true_children_[p] > 0);
        --true_children_[p];
      }
      const bool now = recompute(p);
      if (now != (val_[p] != 0)) {
        val_[p] = now ? 1 : 0;
        worklist_.emplace_back(p, now);
      }
    }
  }
}

bool equivalent(const FormulaStore& store, NodeId a, NodeId b,
                std::uint32_t num_vars) {
  assert(num_vars <= 26 && "equivalent is exhaustive; keep it small");
  std::vector<bool> assignment(num_vars, false);
  for (std::uint64_t mask = 0; mask < (1ULL << num_vars); ++mask) {
    for (std::uint32_t v = 0; v < num_vars; ++v) {
      assignment[v] = (mask >> v) & 1;
    }
    if (eval(store, a, assignment) != eval(store, b, assignment)) return false;
  }
  return true;
}

}  // namespace fta::logic
