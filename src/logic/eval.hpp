// Evaluation and model counting over formula DAGs.
#pragma once

#include <cstdint>
#include <vector>

#include "logic/formula.hpp"

namespace fta::logic {

/// Evaluates the formula rooted at `root` under a complete assignment
/// (assignment[v] is the truth value of variable v). Linear in DAG size.
bool eval(const FormulaStore& store, NodeId root,
          const std::vector<bool>& assignment);

/// Exhaustively counts satisfying assignments over variables [0, num_vars).
/// Exponential — intended for cross-checks on small formulas in tests.
std::uint64_t count_models(const FormulaStore& store, NodeId root,
                           std::uint32_t num_vars);

/// True iff `a` and `b` agree on every assignment over [0, num_vars).
/// Exponential — test helper.
bool equivalent(const FormulaStore& store, NodeId a, NodeId b,
                std::uint32_t num_vars);

}  // namespace fta::logic
