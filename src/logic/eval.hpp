// Evaluation and model counting over formula DAGs.
#pragma once

#include <cstdint>
#include <vector>

#include "logic/formula.hpp"

namespace fta::logic {

/// Evaluates the formula rooted at `root` under a complete assignment
/// (assignment[v] is the truth value of variable v). Linear in DAG size.
bool eval(const FormulaStore& store, NodeId root,
          const std::vector<bool>& assignment);

/// Exhaustively counts satisfying assignments over variables [0, num_vars).
/// Exponential — intended for cross-checks on small formulas in tests.
std::uint64_t count_models(const FormulaStore& store, NodeId root,
                           std::uint32_t num_vars);

/// True iff `a` and `b` agree on every assignment over [0, num_vars).
/// Exponential — test helper.
bool equivalent(const FormulaStore& store, NodeId a, NodeId b,
                std::uint32_t num_vars);

/// Memoized evaluation under single-variable flips.
///
/// Construction evaluates the DAG once (linear) and records, per gate,
/// the number of true children; set() then updates only the nodes whose
/// value actually changes, walking parent lists upward from the flipped
/// leaf. The minimality shrink pass toggles one event per candidate over
/// a fixed formula, which this turns from "full DAG re-evaluation with a
/// hash-map memo per toggle" into a few count adjustments.
class IncrementalEvaluator {
 public:
  /// `assignment[v]` is the truth value of variable v; variables the
  /// formula mentions must be covered.
  IncrementalEvaluator(const FormulaStore& store, NodeId root,
                       std::vector<bool> assignment);

  /// Current value of the root under the current assignment.
  bool value() const noexcept { return val_[root_index_] != 0; }

  bool get(Var v) const { return assignment_[v]; }

  /// Flips variable `v` to `value`, updating affected nodes only.
  void set(Var v, bool value);

 private:
  struct NodeInfo {
    NodeKind kind;
    std::uint32_t threshold;  ///< Children that must be true (see ctor).
    std::uint32_t num_children;
  };

  bool recompute(std::size_t idx) const;

  std::vector<bool> assignment_;
  std::vector<NodeInfo> info_;                     // dense, topo order
  std::vector<std::vector<std::uint32_t>> parents_;  // dense indices
  std::vector<std::uint8_t> val_;
  std::vector<std::uint32_t> true_children_;
  std::vector<std::int32_t> var_index_;  ///< var -> dense node (-1: unused)
  std::size_t root_index_ = 0;
  /// Scratch for set(): (node, became_true) flip events.
  std::vector<std::pair<std::uint32_t, bool>> worklist_;
};

}  // namespace fta::logic
