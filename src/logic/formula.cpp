#include "logic/formula.hpp"

#include <algorithm>
#include <cassert>
#include <functional>
#include <stdexcept>

namespace fta::logic {

std::size_t FormulaStore::NodeHash::operator()(NodeId id) const noexcept {
  const FormulaNode& n = (*nodes)[id];
  std::size_t h = static_cast<std::size_t>(n.kind) * 0x9e3779b97f4a7c15ULL;
  h ^= n.payload + 0x9e3779b9u + (h << 6) + (h >> 2);
  for (NodeId c : n.children) h ^= c + 0x9e3779b9u + (h << 6) + (h >> 2);
  return h;
}

bool FormulaStore::NodeEq::operator()(NodeId a, NodeId b) const noexcept {
  const FormulaNode& na = (*nodes)[a];
  const FormulaNode& nb = (*nodes)[b];
  return na.kind == nb.kind && na.payload == nb.payload &&
         na.children == nb.children;
}

FormulaStore::FormulaStore()
    : unique_(16, NodeHash{&nodes_}, NodeEq{&nodes_}) {
  false_node_ = intern(NodeKind::False, 0, {});
  true_node_ = intern(NodeKind::True, 0, {});
}

NodeId FormulaStore::intern(NodeKind kind, std::uint32_t payload,
                            std::vector<NodeId> children) {
  nodes_.push_back(FormulaNode{kind, payload, std::move(children)});
  const NodeId candidate = static_cast<NodeId>(nodes_.size() - 1);
  auto [it, inserted] = unique_.insert({candidate, candidate});
  if (!inserted) {
    nodes_.pop_back();
    return it->second;
  }
  return candidate;
}

NodeId FormulaStore::var(Var v) {
  num_vars_ = std::max(num_vars_, v + 1);
  return intern(NodeKind::Var, v, {});
}

NodeId FormulaStore::nary(NodeKind kind, std::span<const NodeId> children) {
  assert(kind == NodeKind::And || kind == NodeKind::Or);
  const bool is_and = kind == NodeKind::And;
  const NodeId absorbing = is_and ? false_node_ : true_node_;
  const NodeId identity = is_and ? true_node_ : false_node_;

  std::vector<NodeId> flat;
  flat.reserve(children.size());
  for (NodeId c : children) {
    if (c == absorbing) return absorbing;
    if (c == identity) continue;
    if (nodes_[c].kind == kind) {
      // Flatten nested gates of the same kind: And(And(a,b),c) = And(a,b,c).
      for (NodeId g : nodes_[c].children) flat.push_back(g);
    } else {
      flat.push_back(c);
    }
  }
  std::sort(flat.begin(), flat.end());
  flat.erase(std::unique(flat.begin(), flat.end()), flat.end());
  // x & ~x = false, x | ~x = true.
  for (NodeId c : flat) {
    if (nodes_[c].kind == NodeKind::Not &&
        std::binary_search(flat.begin(), flat.end(), nodes_[c].children[0])) {
      return absorbing;
    }
  }
  if (flat.empty()) return identity;
  if (flat.size() == 1) return flat[0];
  return intern(kind, 0, std::move(flat));
}

NodeId FormulaStore::land(std::span<const NodeId> children) {
  return nary(NodeKind::And, children);
}

NodeId FormulaStore::lor(std::span<const NodeId> children) {
  return nary(NodeKind::Or, children);
}

NodeId FormulaStore::lnot(NodeId child) {
  const FormulaNode& n = nodes_[child];
  if (n.kind == NodeKind::False) return true_node_;
  if (n.kind == NodeKind::True) return false_node_;
  if (n.kind == NodeKind::Not) return n.children[0];  // double negation
  return intern(NodeKind::Not, 0, {child});
}

NodeId FormulaStore::at_least(std::uint32_t k,
                              std::span<const NodeId> children) {
  std::vector<NodeId> kept;
  kept.reserve(children.size());
  std::uint32_t already_true = 0;
  for (NodeId c : children) {
    if (c == true_node_) {
      ++already_true;
    } else if (c != false_node_) {
      kept.push_back(c);
    }
  }
  k = (k > already_true) ? k - already_true : 0;
  if (k == 0) return true_node_;
  if (k > kept.size()) return false_node_;
  if (k == 1) return lor(kept);
  if (k == kept.size()) return land(kept);
  std::sort(kept.begin(), kept.end());
  // Note: duplicates are deliberately kept — AtLeast counts occurrences.
  return intern(NodeKind::AtLeast, k, std::move(kept));
}

namespace {

/// Memoized bottom-up rewrite driver shared by the transformations below.
/// `fn(store, node, rewritten_children)` builds the replacement node.
/// Iterative post-order: chain-shaped formulas reach depths that
/// overflow the call stack (first seen under sanitizer-sized frames).
template <typename Fn>
NodeId rewrite(FormulaStore& store, NodeId root, Fn&& fn,
               std::unordered_map<NodeId, NodeId>& memo) {
  std::vector<std::pair<NodeId, bool>> stack{{root, false}};
  std::vector<NodeId> kids;
  while (!stack.empty()) {
    const auto [id, expanded] = stack.back();
    stack.pop_back();
    if (memo.count(id)) continue;
    if (!expanded) {
      stack.push_back({id, true});
      for (NodeId c : store.node(id).children) {
        if (!memo.count(c)) stack.push_back({c, false});
      }
      continue;
    }
    kids.clear();
    const FormulaNode& n = store.node(id);
    kids.reserve(n.children.size());
    for (NodeId c : n.children) kids.push_back(memo.at(c));
    // `n` must not be used past this call: fn may grow the store.
    const NodeId out = fn(id, kids);
    memo.emplace(id, out);
  }
  return memo.at(root);
}

}  // namespace

NodeId FormulaStore::negate_nnf(NodeId root) {
  // memo over (node, polarity); encode polarity in the key's low bit.
  std::unordered_map<std::uint64_t, NodeId> memo;
  // pol=true means "produce node equivalent to the subformula",
  // pol=false means "produce its negation".
  std::function<NodeId(NodeId, bool)> go = [&](NodeId id, bool pol) -> NodeId {
    const std::uint64_t key = (static_cast<std::uint64_t>(id) << 1) |
                              static_cast<std::uint64_t>(pol);
    if (auto it = memo.find(key); it != memo.end()) return it->second;
    const FormulaNode n = nodes_[id];  // copy: store may reallocate below
    NodeId out = kNoNode;
    switch (n.kind) {
      case NodeKind::False:
        out = constant(!pol ? true : false);
        break;
      case NodeKind::True:
        out = constant(pol);
        break;
      case NodeKind::Var:
        out = pol ? id : lnot(id);
        break;
      case NodeKind::Not:
        out = go(n.children[0], !pol);
        break;
      case NodeKind::And:
      case NodeKind::Or: {
        std::vector<NodeId> kids;
        kids.reserve(n.children.size());
        for (NodeId c : n.children) kids.push_back(go(c, pol));
        const bool make_and = (n.kind == NodeKind::And) == pol;
        out = make_and ? land(kids) : lor(kids);
        break;
      }
      case NodeKind::AtLeast: {
        std::vector<NodeId> kids;
        kids.reserve(n.children.size());
        for (NodeId c : n.children) kids.push_back(go(c, pol));
        const auto cnt = static_cast<std::uint32_t>(n.children.size());
        // ¬AtLeast(k, xs) == AtLeast(n-k+1, ¬xs).
        const std::uint32_t k = pol ? n.payload : cnt - n.payload + 1;
        out = at_least(k, kids);
        break;
      }
    }
    memo.emplace(key, out);
    return out;
  };
  return go(root, /*pol=*/false);
}

NodeId FormulaStore::dualize(NodeId root) {
  std::unordered_map<NodeId, NodeId> memo;
  return rewrite(
      *this, root,
      [this](NodeId id, const std::vector<NodeId>& kids) -> NodeId {
        const FormulaNode& n = nodes_[id];
        switch (n.kind) {
          case NodeKind::False: return true_node_;
          case NodeKind::True: return false_node_;
          case NodeKind::Var: return id;
          case NodeKind::Not: return lnot(kids[0]);
          case NodeKind::And: return lor(kids);
          case NodeKind::Or: return land(kids);
          case NodeKind::AtLeast: {
            const auto cnt = static_cast<std::uint32_t>(kids.size());
            return at_least(cnt - n.payload + 1, kids);
          }
        }
        return kNoNode;
      },
      memo);
}

NodeId FormulaStore::lower_at_least(NodeId root) {
  return lower_at_least(root,
                        [](std::uint32_t, std::size_t) { return true; });
}

NodeId FormulaStore::lower_at_least(
    NodeId root,
    const std::function<bool(std::uint32_t, std::size_t)>& should_lower) {
  std::unordered_map<NodeId, NodeId> memo;
  // Memoized suffix recursion shared across all AtLeast nodes:
  // atleast(k, xs[i..]) keyed on (children-vector identity, i, k).
  // Implemented per-node; sharing within a node is what matters for size.
  return rewrite(
      *this, root,
      [this, &should_lower](NodeId id, const std::vector<NodeId>& kids)
          -> NodeId {
        const FormulaNode& n = nodes_[id];
        switch (n.kind) {
          case NodeKind::False:
          case NodeKind::True:
          case NodeKind::Var:
            return id;
          case NodeKind::Not:
            return lnot(kids[0]);
          case NodeKind::And:
            return land(kids);
          case NodeKind::Or:
            return lor(kids);
          case NodeKind::AtLeast: {
            const std::uint32_t total_k = n.payload;
            const auto cnt = kids.size();
            if (!should_lower(total_k, cnt)) return at_least(total_k, kids);
            // table[i][j] = atleast(j, kids[i..]) built right-to-left.
            // j ranges 0..total_k; table stored densely.
            std::vector<std::vector<NodeId>> table(
                cnt + 1, std::vector<NodeId>(total_k + 1, kNoNode));
            for (std::uint32_t j = 0; j <= total_k; ++j) {
              table[cnt][j] = constant(j == 0);
            }
            for (std::size_t i = cnt; i-- > 0;) {
              table[i][0] = constant(true);
              for (std::uint32_t j = 1; j <= total_k; ++j) {
                // atleast(j, xs[i..]) = (xs[i] & atleast(j-1, xs[i+1..]))
                //                     | atleast(j, xs[i+1..])
                table[i][j] = lor({land({kids[i], table[i + 1][j - 1]}),
                                   table[i + 1][j]});
              }
            }
            return table[0][total_k];
          }
        }
        return kNoNode;
      },
      memo);
}

NodeId FormulaStore::substitute(NodeId root,
                                const std::vector<NodeId>& replacement) {
  std::unordered_map<NodeId, NodeId> memo;
  return rewrite(
      *this, root,
      [this, &replacement](NodeId id, const std::vector<NodeId>& kids)
          -> NodeId {
        const FormulaNode& n = nodes_[id];
        switch (n.kind) {
          case NodeKind::False:
          case NodeKind::True:
            return id;
          case NodeKind::Var:
            if (n.payload < replacement.size() &&
                replacement[n.payload] != kNoNode) {
              return replacement[n.payload];
            }
            return id;
          case NodeKind::Not: return lnot(kids[0]);
          case NodeKind::And: return land(kids);
          case NodeKind::Or: return lor(kids);
          case NodeKind::AtLeast: return at_least(n.payload, kids);
        }
        return kNoNode;
      },
      memo);
}

bool FormulaStore::is_monotone(NodeId root) const {
  std::vector<NodeId> stack{root};
  std::unordered_map<NodeId, bool> seen;
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    if (seen.count(id)) continue;
    seen.emplace(id, true);
    const FormulaNode& n = nodes_[id];
    if (n.kind == NodeKind::Not) return false;
    for (NodeId c : n.children) stack.push_back(c);
  }
  return true;
}

FormulaStats FormulaStore::stats(NodeId root) const {
  FormulaStats s;
  std::unordered_map<NodeId, std::size_t> depth;  // also the visited set
  std::vector<Var> vars;
  // Iterative post-order to avoid recursion depth issues on deep chains.
  std::vector<std::pair<NodeId, bool>> stack{{root, false}};
  while (!stack.empty()) {
    auto [id, expanded] = stack.back();
    stack.pop_back();
    if (depth.count(id)) continue;
    const FormulaNode& n = nodes_[id];
    if (!expanded) {
      stack.push_back({id, true});
      for (NodeId c : n.children) {
        if (!depth.count(c)) stack.push_back({c, false});
      }
      continue;
    }
    std::size_t d = 0;
    for (NodeId c : n.children) d = std::max(d, depth[c] + 1);
    depth[id] = d;
    ++s.nodes;
    switch (n.kind) {
      case NodeKind::Var: vars.push_back(n.payload); break;
      case NodeKind::Not:
      case NodeKind::And:
      case NodeKind::Or:
      case NodeKind::AtLeast: ++s.gates; break;
      default: break;
    }
  }
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  s.vars = vars.size();
  s.max_depth = depth[root];
  return s;
}

std::string FormulaStore::to_string(NodeId root) const {
  const FormulaNode& n = nodes_[root];
  switch (n.kind) {
    case NodeKind::False: return "0";
    case NodeKind::True: return "1";
    case NodeKind::Var: return "x" + std::to_string(n.payload);
    case NodeKind::Not: {
      std::string out = "~";
      out += to_string(n.children[0]);
      return out;
    }
    case NodeKind::And:
    case NodeKind::Or: {
      const char* op = n.kind == NodeKind::And ? " & " : " | ";
      std::string out = "(";
      for (std::size_t i = 0; i < n.children.size(); ++i) {
        if (i) out += op;
        out += to_string(n.children[i]);
      }
      return out + ")";
    }
    case NodeKind::AtLeast: {
      std::string out = "atleast" + std::to_string(n.payload) + "(";
      for (std::size_t i = 0; i < n.children.size(); ++i) {
        if (i) out += ", ";
        out += to_string(n.children[i]);
      }
      return out + ")";
    }
  }
  return "?";
}

}  // namespace fta::logic
