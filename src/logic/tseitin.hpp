// CNF conversion (the paper's Step 2).
//
// The Tseitin transformation introduces one fresh variable per gate and
// emits defining clauses, producing an equisatisfiable CNF in linear time.
// Formula variables keep their indices (CNF var v == formula var v); gate
// auxiliaries are allocated above num_vars().
//
// A Plaisted–Greenbaum variant (implication clauses only for the polarity
// in which each gate occurs) is available as an option, and a naive
// distributive expansion is provided for the ablation benchmark that
// motivates Step 2.
//
// AtLeast(k) voting gates are first-class: depending on the configured
// CardinalityLowering they are either expanded to the O(n·k) AND/OR
// network first (the historical behaviour) or encoded directly as shared
// totalizer counting networks (logic/cardinality) — polarity-directed, so
// a monotone instance with the root asserted emits only the clause half
// its gates actually need. Totalizer-lowered gates are reported as
// CardinalityBlocks so downstream layers can freeze the counting
// auxiliaries (preprocessing) and reuse the networks (MaxSAT).
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "logic/cardinality.hpp"
#include "logic/cnf.hpp"
#include "logic/formula.hpp"
#include "logic/structure.hpp"

namespace fta::logic {

/// How AtLeast(k) gates reach CNF.
enum class CardinalityLowering : std::uint8_t {
  Expand,     ///< Rewrite to the recursive AND/OR network, then Tseitin.
  Totalizer,  ///< Encode every vote as a totalizer counting network.
  Auto,       ///< Totalizer when n*k reaches the threshold, else expand.
};

const char* cardinality_lowering_name(CardinalityLowering mode) noexcept;

/// The lowering policy: whether an AtLeast(k) gate over n inputs is
/// encoded as a totalizer network under `mode`/`threshold`. Exposed so
/// other layers (e.g. the pipeline's preprocessing profile) share the
/// exact decision rule instead of re-deriving it. Note tseitin applies
/// it to *post-fold* gate dimensions (constant children removed, k==1/n
/// rewritten away by FormulaStore::at_least).
bool lowers_to_totalizer(CardinalityLowering mode, std::uint32_t threshold,
                         std::uint32_t k, std::size_t n) noexcept;

struct TseitinOptions {
  /// If true, emit only the clause direction implied by each gate's
  /// polarity (Plaisted–Greenbaum). Halves clause count; still
  /// equisatisfiable when the root is asserted.
  bool polarity_aware = false;
  /// Vote-gate lowering strategy. Totalizer-encoded gates are always
  /// polarity-directed (independent of `polarity_aware`): the counting
  /// clauses are auxiliary definitions, so omitting the unused half
  /// preserves the model projection onto input variables.
  CardinalityLowering card_lowering = CardinalityLowering::Auto;
  /// Auto mode encodes AtLeast(k) over n inputs as a totalizer when
  /// n*k >= this; below it the expanded network is comparable in size
  /// and interacts well with preprocessing. The default (10) makes every
  /// wide vote (n >= 5) cardinality-native.
  std::uint32_t card_totalizer_threshold = 10;
};

struct TseitinResult {
  Cnf cnf;
  /// Literal representing each translated formula node.
  std::unordered_map<NodeId, Lit> node_lit;
  /// Literal for the root formula.
  Lit root{};
  /// Number of original (formula) variables; CNF vars >= this are gate
  /// auxiliaries.
  std::uint32_t num_input_vars = 0;
  /// One entry per totalizer-lowered AtLeast gate (empty under Expand).
  std::vector<CardinalityBlock> cards;
  /// The gate fan-in DAG, children-first — one entry per auxiliary the
  /// translation introduced. Package with make_structure_hints for the
  /// SAT core's structure-aware layer.
  std::vector<GateDef> gates;
};

/// Translates `root` to CNF. If `assert_root`, a unit clause forces the
/// root literal true, so CNF models restricted to input variables are
/// exactly the models of the formula. AtLeast gates are lowered according
/// to `opts.card_lowering` (hence the store is taken by reference).
TseitinResult tseitin(FormulaStore& store, NodeId root,
                      bool assert_root = true, TseitinOptions opts = {});

/// Naive CNF by distribution — exponential in the worst case. Returns
/// nullopt once more than `max_clauses` clauses would be produced.
/// Exists for bench/ablation_tseitin (Step 2's motivation).
std::optional<Cnf> distributive_cnf(FormulaStore& store, NodeId root,
                                    std::size_t max_clauses = 1'000'000);

}  // namespace fta::logic
