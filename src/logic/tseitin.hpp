// CNF conversion (the paper's Step 2).
//
// The Tseitin transformation introduces one fresh variable per gate and
// emits defining clauses, producing an equisatisfiable CNF in linear time.
// Formula variables keep their indices (CNF var v == formula var v); gate
// auxiliaries are allocated above num_vars().
//
// A Plaisted–Greenbaum variant (implication clauses only for the polarity
// in which each gate occurs) is available as an option, and a naive
// distributive expansion is provided for the ablation benchmark that
// motivates Step 2.
#pragma once

#include <optional>
#include <unordered_map>

#include "logic/cnf.hpp"
#include "logic/formula.hpp"

namespace fta::logic {

struct TseitinOptions {
  /// If true, emit only the clause direction implied by each gate's
  /// polarity (Plaisted–Greenbaum). Halves clause count; still
  /// equisatisfiable when the root is asserted.
  bool polarity_aware = false;
};

struct TseitinResult {
  Cnf cnf;
  /// Literal representing each translated formula node.
  std::unordered_map<NodeId, Lit> node_lit;
  /// Literal for the root formula.
  Lit root{};
  /// Number of original (formula) variables; CNF vars >= this are gate
  /// auxiliaries.
  std::uint32_t num_input_vars = 0;
};

/// Translates `root` to CNF. If `assert_root`, a unit clause forces the
/// root literal true, so CNF models restricted to input variables are
/// exactly the models of the formula. AtLeast gates are lowered to shared
/// AND/OR structure first (hence the store is taken by reference).
TseitinResult tseitin(FormulaStore& store, NodeId root,
                      bool assert_root = true, TseitinOptions opts = {});

/// Naive CNF by distribution — exponential in the worst case. Returns
/// nullopt once more than `max_clauses` clauses would be produced.
/// Exists for bench/ablation_tseitin (Step 2's motivation).
std::optional<Cnf> distributive_cnf(FormulaStore& store, NodeId root,
                                    std::size_t max_clauses = 1'000'000);

}  // namespace fta::logic
