// DIMACS CNF reading/writing, for interoperability with external SAT
// tooling and for golden-file tests.
#pragma once

#include <iosfwd>
#include <string>

#include "logic/cnf.hpp"

namespace fta::logic {

/// Writes `p cnf <vars> <clauses>` followed by one clause per line.
void write_dimacs(std::ostream& os, const Cnf& cnf,
                  const std::string& comment = "");

/// Parses a DIMACS CNF document. Throws std::runtime_error on malformed
/// input. Comment lines (`c ...`) are skipped.
Cnf read_dimacs(std::istream& is);

/// Convenience string round-trips used by tests.
std::string to_dimacs_string(const Cnf& cnf);
Cnf from_dimacs_string(const std::string& text);

}  // namespace fta::logic
