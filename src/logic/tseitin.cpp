#include "logic/tseitin.hpp"

#include <cassert>
#include <functional>
#include <stdexcept>
#include <unordered_set>

namespace fta::logic {

const char* cardinality_lowering_name(CardinalityLowering mode) noexcept {
  switch (mode) {
    case CardinalityLowering::Expand: return "expand";
    case CardinalityLowering::Totalizer: return "totalizer";
    case CardinalityLowering::Auto: return "auto";
  }
  return "?";
}

bool lowers_to_totalizer(CardinalityLowering mode, std::uint32_t threshold,
                         std::uint32_t k, std::size_t n) noexcept {
  switch (mode) {
    case CardinalityLowering::Expand: return false;
    case CardinalityLowering::Totalizer: return true;
    case CardinalityLowering::Auto:
      return static_cast<std::uint64_t>(k) * n >= threshold;
  }
  return false;
}

namespace {

bool use_totalizer(const TseitinOptions& opts, std::uint32_t k,
                   std::size_t n) {
  return lowers_to_totalizer(opts.card_lowering,
                             opts.card_totalizer_threshold, k, n);
}

/// Reachable nodes in topological (children-first) order, iteratively.
std::vector<NodeId> topo_order(const FormulaStore& store, NodeId root) {
  std::vector<NodeId> order;
  std::unordered_map<NodeId, bool> done;
  std::vector<std::pair<NodeId, bool>> stack{{root, false}};
  while (!stack.empty()) {
    auto [id, expanded] = stack.back();
    stack.pop_back();
    if (done.count(id)) continue;
    if (expanded) {
      done.emplace(id, true);
      order.push_back(id);
      continue;
    }
    stack.push_back({id, true});
    for (NodeId c : store.node(id).children) {
      if (!done.count(c)) stack.push_back({c, false});
    }
  }
  return order;
}

struct Polarity {
  bool pos = false;
  bool neg = false;
};

/// Which polarities each node occurs in, starting from a positive root.
/// NOT flips polarity for its child.
std::unordered_map<NodeId, Polarity> polarities(const FormulaStore& store,
                                                NodeId root) {
  std::unordered_map<NodeId, Polarity> pol;
  // Worklist of (node, polarity) pairs; each is processed at most twice.
  std::vector<std::pair<NodeId, bool>> work{{root, true}};
  while (!work.empty()) {
    auto [id, p] = work.back();
    work.pop_back();
    Polarity& entry = pol[id];
    bool& flag = p ? entry.pos : entry.neg;
    if (flag) continue;
    flag = true;
    const FormulaNode& n = store.node(id);
    const bool child_pol = (n.kind == NodeKind::Not) ? !p : p;
    for (NodeId c : n.children) work.push_back({c, child_pol});
  }
  return pol;
}

}  // namespace

TseitinResult tseitin(FormulaStore& store, NodeId root, bool assert_root,
                      TseitinOptions opts) {
  // Voting gates below the totalizer policy are expanded to shared AND/OR
  // structure; the rest stay AtLeast nodes and get counting networks.
  root = store.lower_at_least(root, [&opts](std::uint32_t k, std::size_t n) {
    return !use_totalizer(opts, k, n);
  });

  TseitinResult res;
  res.num_input_vars = store.num_vars();
  res.cnf = Cnf(store.num_vars());

  const FormulaNode& rn = store.node(root);
  if (rn.kind == NodeKind::True || rn.kind == NodeKind::False) {
    // Degenerate roots: represent with a fresh variable pinned to the
    // constant so callers still get a literal to work with.
    const Var v = res.cnf.new_var();
    res.root = Lit::pos(v);
    res.cnf.add_unit(rn.kind == NodeKind::True ? Lit::pos(v) : Lit::neg(v));
    res.node_lit.emplace(root, res.root);
    if (assert_root && rn.kind == NodeKind::False) {
      // Asserting a false root: force contradiction explicitly.
      res.cnf.add_unit(Lit::pos(v));
      res.cnf.add_unit(Lit::neg(v));
    }
    return res;
  }

  const auto order = topo_order(store, root);
  bool has_card = false;
  for (NodeId id : order) {
    if (store.node(id).kind == NodeKind::AtLeast) {
      has_card = true;
      break;
    }
  }
  // Cardinality gates are polarity-directed regardless of the AND/OR
  // polarity option: their counting clauses are auxiliary definitions.
  const auto pol = (opts.polarity_aware || has_card)
                       ? polarities(store, root)
                       : std::unordered_map<NodeId, Polarity>{};

  auto polarity_of = [&](NodeId id) -> Polarity {
    auto it = pol.find(id);
    assert(it != pol.end());
    return it->second;
  };
  auto needs = [&](NodeId id) -> Polarity {
    if (!opts.polarity_aware) return Polarity{true, true};
    return polarity_of(id);
  };

  // Nodes that hold in *every* model of the asserted encoding: the root
  // and anything on an AND-only path below it. A forced AtLeast gate
  // means its count bound is unconditional — the precondition for the
  // MaxSAT layer's pre-built-core reuse (CardinalityBlock::forced).
  std::unordered_set<NodeId> forced;
  if (assert_root) {
    std::vector<NodeId> stack{root};
    while (!stack.empty()) {
      const NodeId id = stack.back();
      stack.pop_back();
      if (!forced.insert(id).second) continue;
      const FormulaNode& fn = store.node(id);
      if (fn.kind == NodeKind::And) {
        for (NodeId c : fn.children) stack.push_back(c);
      }
    }
  }

  for (NodeId id : order) {
    const FormulaNode& n = store.node(id);
    switch (n.kind) {
      case NodeKind::Var:
        res.node_lit.emplace(id, Lit::pos(n.payload));
        break;
      case NodeKind::Not:
        // No auxiliary needed: reuse the child's literal, negated.
        res.node_lit.emplace(id, ~res.node_lit.at(n.children[0]));
        break;
      case NodeKind::And:
      case NodeKind::Or: {
        const Lit g = Lit::pos(res.cnf.new_var());
        res.node_lit.emplace(id, g);
        const Polarity p = needs(id);
        const bool is_and = n.kind == NodeKind::And;
        GateDef gd;
        gd.out = g.var();
        gd.kind = is_and ? GateDef::Kind::And : GateDef::Kind::Or;
        gd.pos_half = p.pos;
        gd.neg_half = p.neg;
        gd.forced = forced.count(id) != 0;
        gd.fanin.reserve(n.children.size());
        for (NodeId c : n.children) gd.fanin.push_back(res.node_lit.at(c));
        res.gates.push_back(std::move(gd));
        // For AND: g -> c_i (pos side), (/\ c_i) -> g (neg side).
        // For OR:  g -> (\/ c_i) (pos side), c_i -> g (neg side).
        if (is_and ? p.pos : p.neg) {
          for (NodeId c : n.children) {
            const Lit cl = res.node_lit.at(c);
            res.cnf.add_binary(is_and ? ~g : g, is_and ? cl : ~cl);
          }
        }
        if (is_and ? p.neg : p.pos) {
          Clause big;
          big.reserve(n.children.size() + 1);
          big.push_back(is_and ? g : ~g);
          for (NodeId c : n.children) {
            const Lit cl = res.node_lit.at(c);
            big.push_back(is_and ? ~cl : cl);
          }
          res.cnf.add_clause(std::move(big));
        }
        break;
      }
      case NodeKind::True:
      case NodeKind::False:
        // Constants are folded by the store constructors; they can only be
        // the root, which is handled above.
        throw std::logic_error("tseitin: unexpected constant inner node");
      case NodeKind::AtLeast: {
        // Cardinality-native lowering: one totalizer counting network,
        // polarity-directed. Positive occurrences need the gate to
        // *enforce* the count (downward half + g -> o_k); negative ones
        // need it to *detect* the count (upward half + o_k -> g).
        const Lit g = Lit::pos(res.cnf.new_var());
        res.node_lit.emplace(id, g);
        const Polarity p = polarity_of(id);
        CardinalityBlock blk;
        blk.k = n.payload;
        blk.gate = g;
        blk.inputs.reserve(n.children.size());
        for (NodeId c : n.children) {
          blk.inputs.push_back(res.node_lit.at(c));
        }
        blk.forced = forced.count(id) != 0;
        TotalizerTree tree(blk.inputs);
        CnfSink sink(res.cnf);
        if (p.pos) {
          tree.ensure_downward(sink, blk.k);
          res.cnf.add_binary(~g, tree.at_least(blk.k));
          blk.downward = true;
        }
        if (p.neg) {
          tree.ensure_upward(sink, blk.k);
          res.cnf.add_binary(g, ~tree.at_least(blk.k));
          blk.upward = true;
        }
        GateDef gd;
        gd.out = g.var();
        gd.kind = GateDef::Kind::Card;
        gd.pos_half = p.pos;
        gd.neg_half = p.neg;
        gd.forced = blk.forced;
        gd.k = blk.k;
        gd.fanin = blk.inputs;
        res.gates.push_back(std::move(gd));
        blk.layout = tree.layout();
        res.cards.push_back(std::move(blk));
        break;
      }
    }
  }

  res.root = res.node_lit.at(root);
  if (assert_root) res.cnf.add_unit(res.root);
  return res;
}

std::optional<Cnf> distributive_cnf(FormulaStore& store, NodeId root,
                                    std::size_t max_clauses) {
  // Normalize: lower voting gates and push negations to the leaves.
  root = store.lower_at_least(root);
  root = store.negate_nnf(store.negate_nnf(root));  // NNF of root itself

  using ClauseSet = std::vector<Clause>;
  std::unordered_map<NodeId, ClauseSet> memo;
  bool overflow = false;

  std::function<const ClauseSet&(NodeId)> go =
      [&](NodeId id) -> const ClauseSet& {
    auto it = memo.find(id);
    if (it != memo.end()) return it->second;
    const FormulaNode& n = store.node(id);
    ClauseSet out;
    switch (n.kind) {
      case NodeKind::False:
        out.push_back({});  // the empty clause: unsatisfiable
        break;
      case NodeKind::True:
        break;  // no clauses
      case NodeKind::Var:
        out.push_back({Lit::pos(n.payload)});
        break;
      case NodeKind::Not: {
        const FormulaNode& c = store.node(n.children[0]);
        assert(c.kind == NodeKind::Var && "NNF guarantees literal NOTs");
        out.push_back({Lit::neg(c.payload)});
        break;
      }
      case NodeKind::And:
        for (NodeId c : n.children) {
          const ClauseSet& cs = go(c);
          out.insert(out.end(), cs.begin(), cs.end());
          if (out.size() > max_clauses) {
            overflow = true;
            break;
          }
        }
        break;
      case NodeKind::Or: {
        // Cross product of children clause sets.
        out.push_back({});
        for (NodeId c : n.children) {
          const ClauseSet& cs = go(c);
          ClauseSet next;
          next.reserve(out.size() * cs.size());
          for (const Clause& a : out) {
            for (const Clause& b : cs) {
              Clause merged = a;
              merged.insert(merged.end(), b.begin(), b.end());
              next.push_back(std::move(merged));
              if (next.size() > max_clauses) {
                overflow = true;
                break;
              }
            }
            if (overflow) break;
          }
          out = std::move(next);
          if (overflow) break;
        }
        break;
      }
      case NodeKind::AtLeast:
        assert(false && "lowered above");
        break;
    }
    return memo.emplace(id, std::move(out)).first->second;
  };

  const ClauseSet& clauses = go(root);
  if (overflow) return std::nullopt;
  Cnf cnf(store.num_vars());
  for (const Clause& c : clauses) cnf.add_clause(c);
  return cnf;
}

}  // namespace fta::logic
