// A CNF formula: a conjunction of clauses over dense variables.
//
// This is the hand-off format between the logic layer (Tseitin output),
// the CDCL SAT solver and the MaxSAT layer's hard constraints.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "logic/lit.hpp"

namespace fta::logic {

using Clause = std::vector<Lit>;

class Cnf {
 public:
  Cnf() = default;
  explicit Cnf(std::uint32_t num_vars) : num_vars_(num_vars) {}

  /// Allocates a fresh variable and returns its index.
  Var new_var() { return num_vars_++; }

  /// Grows the variable count so that `v` is valid.
  void ensure_var(Var v) {
    if (v >= num_vars_) num_vars_ = v + 1;
  }

  void add_clause(Clause clause);
  void add_clause(std::span<const Lit> lits) {
    add_clause(Clause(lits.begin(), lits.end()));
  }
  void add_clause(std::initializer_list<Lit> lits) {
    add_clause(Clause(lits));
  }
  void add_unit(Lit l) { add_clause(Clause{l}); }
  void add_binary(Lit a, Lit b) { add_clause(Clause{a, b}); }
  void add_ternary(Lit a, Lit b, Lit c) { add_clause(Clause{a, b, c}); }

  std::uint32_t num_vars() const noexcept { return num_vars_; }
  std::size_t num_clauses() const noexcept { return clauses_.size(); }
  const std::vector<Clause>& clauses() const noexcept { return clauses_; }

  /// Total number of literal occurrences across all clauses.
  std::size_t num_literals() const noexcept;

  /// Evaluates the CNF under a complete assignment (index = variable).
  bool eval(const std::vector<bool>& assignment) const;

 private:
  std::uint32_t num_vars_ = 0;
  std::vector<Clause> clauses_;
};

}  // namespace fta::logic
