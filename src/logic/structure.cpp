#include "logic/structure.hpp"

#include <cassert>
#include <deque>

namespace fta::logic {

const char* structure_mode_name(StructureMode mode) noexcept {
  switch (mode) {
    case StructureMode::Off: return "off";
    case StructureMode::Hints: return "hints";
    case StructureMode::Full: return "full";
  }
  return "?";
}

StructureHints make_structure_hints(std::vector<GateDef> gates, Lit root,
                                    std::uint32_t num_input_vars,
                                    std::uint32_t num_vars) {
  StructureHints h;
  h.gates = std::move(gates);
  h.root = root;
  h.num_input_vars = num_input_vars;
  h.num_vars = num_vars;
  h.depth.assign(num_vars, StructureHints::kNoDepth);

  // Var -> defining gate, for the BFS over fan-ins. Hash-consing makes
  // gate outputs unique, so a plain index works.
  std::vector<std::uint32_t> def(num_vars, 0xffffffffu);
  for (std::uint32_t i = 0; i < h.gates.size(); ++i) {
    assert(h.gates[i].out < num_vars);
    def[h.gates[i].out] = i;
  }

  // Shortest gate-hop distance from the root: a shared subterm is as
  // shallow as its shallowest use, which is where deciding it pays most.
  std::deque<Var> queue;
  if (root != kNoLit && root.var() < num_vars) {
    h.depth[root.var()] = 0;
    queue.push_back(root.var());
  }
  while (!queue.empty()) {
    const Var v = queue.front();
    queue.pop_front();
    const std::uint32_t gi = def[v];
    if (gi == 0xffffffffu) continue;  // an event: no fan-in to descend
    const std::uint32_t d = h.depth[v] + 1;
    for (const Lit l : h.gates[gi].fanin) {
      const Var c = l.var();
      if (c < num_vars && d < h.depth[c]) {
        h.depth[c] = d;
        queue.push_back(c);
      }
    }
  }
  return h;
}

}  // namespace fta::logic
