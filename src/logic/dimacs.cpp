#include "logic/dimacs.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace fta::logic {

void write_dimacs(std::ostream& os, const Cnf& cnf,
                  const std::string& comment) {
  if (!comment.empty()) os << "c " << comment << '\n';
  os << "p cnf " << cnf.num_vars() << ' ' << cnf.num_clauses() << '\n';
  for (const auto& clause : cnf.clauses()) {
    for (Lit l : clause) os << l.to_dimacs() << ' ';
    os << "0\n";
  }
}

Cnf read_dimacs(std::istream& is) {
  std::string line;
  Cnf cnf;
  bool header_seen = false;
  std::uint32_t declared_vars = 0;
  Clause current;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == 'c') continue;
    if (line[0] == 'p') {
      std::istringstream hs(line);
      std::string p, fmt;
      std::size_t nclauses = 0;
      if (!(hs >> p >> fmt >> declared_vars >> nclauses) || fmt != "cnf") {
        throw std::runtime_error("dimacs: malformed problem line: " + line);
      }
      header_seen = true;
      cnf.ensure_var(declared_vars == 0 ? 0 : declared_vars - 1);
      continue;
    }
    if (!header_seen) {
      throw std::runtime_error("dimacs: clause before problem line");
    }
    std::istringstream ls(line);
    std::int64_t v = 0;
    while (ls >> v) {
      if (v == 0) {
        cnf.add_clause(current);
        current.clear();
      } else {
        const auto var = static_cast<Var>((v > 0 ? v : -v) - 1);
        current.push_back(Lit::make(var, v < 0));
      }
    }
  }
  if (!current.empty()) {
    throw std::runtime_error("dimacs: clause not terminated by 0");
  }
  return cnf;
}

std::string to_dimacs_string(const Cnf& cnf) {
  std::ostringstream os;
  write_dimacs(os, cnf);
  return os.str();
}

Cnf from_dimacs_string(const std::string& text) {
  std::istringstream is(text);
  return read_dimacs(is);
}

}  // namespace fta::logic
