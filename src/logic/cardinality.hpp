// Cardinality-native CNF encoding: the totalizer counting network shared
// by the Tseitin transform (k-of-n vote gates) and the MaxSAT engines
// (OLL core transformation, LSU bounding).
//
// A totalizer (Bailleux & Boutobza) arranges the input literals as the
// leaves of a balanced binary tree; each internal node carries output
// variables o_1..o_m with o_j meaning "at least j of the inputs below are
// true". The two clause halves are independent and polarity-directed:
//
//   * upward   — (count >= j) -> o_j: assuming ~o_j bounds the count from
//     above. What core-guided MaxSAT and negative gate occurrences need.
//   * downward — o_j -> (count >= j): asserting o_j enforces the count
//     from below. What a positively occurring AtLeast gate needs.
//
// Both halves share the same output variables, are materialised lazily up
// to a requested bound (counting k-of-n costs O(n*k) clauses instead of
// the O(n^2) full encoding), and can be emitted into any ClauseSink — the
// plain Cnf container at encoding time, a live SAT solver later.
//
// The node structure (CardinalityLayout) is plain data: an encoding layer
// can build a downward-only network into a Cnf, ship the layout alongside
// the instance, and a solver can *adopt* it to add the upward half or
// higher bounds over the very same variables instead of re-encoding the
// count from scratch (see maxsat::IncrementalOll).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "logic/cnf.hpp"
#include "logic/lit.hpp"

namespace fta::logic {

/// Destination of emitted clauses and freshly minted variables. Adapters
/// exist for logic::Cnf (below) and sat::Solver (maxsat/totalizer.hpp —
/// the logic layer must not depend on the solver).
class ClauseSink {
 public:
  virtual ~ClauseSink() = default;
  virtual Var new_var() = 0;
  virtual void add_clause(std::span<const Lit> lits) = 0;
};

class CnfSink final : public ClauseSink {
 public:
  explicit CnfSink(Cnf& cnf) : cnf_(&cnf) {}
  Var new_var() override { return cnf_->new_var(); }
  void add_clause(std::span<const Lit> lits) override {
    cnf_->add_clause(lits);
  }

 private:
  Cnf* cnf_;
};

/// The serialisable structure of a totalizer network: which variables play
/// which counting role, and how far each clause half has been emitted.
/// Copying a layout into another TotalizerTree continues the encoding over
/// the same variables (new clauses only).
struct CardinalityLayout {
  struct Node {
    std::int32_t left = -1;   ///< Child node ids; -1 for leaves.
    std::int32_t right = -1;
    std::uint32_t size = 0;   ///< Inputs below this node.
    std::uint32_t emitted_up = 0;    ///< Upward clauses cover counts <= this.
    std::uint32_t emitted_down = 0;  ///< Downward clauses cover counts <= this.
    std::vector<Lit> outputs;  ///< outputs[j-1] = "at least j"; a leaf's
                               ///< only output is the input literal itself.
  };
  std::vector<Node> nodes;
  std::int32_t root = -1;
  std::uint32_t num_inputs = 0;

  bool empty() const noexcept { return nodes.empty(); }
};

/// Appends every auxiliary variable of `layout` (internal-node outputs;
/// leaf outputs are the caller's input literals, not auxiliaries).
void append_aux_vars(const CardinalityLayout& layout, std::vector<Var>& out);

/// One lowered AtLeast(k) gate, as reported by the Tseitin transform:
/// enough metadata for the preprocessor to freeze every counting variable
/// by construction and for the MaxSAT layer to reuse the network as a
/// pre-built core structure.
struct CardinalityBlock {
  std::uint32_t k = 0;        ///< Threshold: gate true iff >= k inputs true.
  Lit gate{};                 ///< The gate's Tseitin literal.
  std::vector<Lit> inputs;    ///< Child literals being counted.
  /// "count >= k" holds in every model of the encoding (the gate sits on
  /// an AND-only path from the asserted root) — the precondition for the
  /// MaxSAT layer's lower-bound pre-transformation.
  bool forced = false;
  bool upward = false;        ///< Which halves the encoding emitted
  bool downward = false;      ///< (up to bound k).
  CardinalityLayout layout;
};

/// The counting network. Construction builds the node structure only;
/// clauses and output variables appear through ensure_upward /
/// ensure_downward, each monotone in its bound.
class TotalizerTree {
 public:
  /// Fresh network over `inputs` (leaves in the given order).
  explicit TotalizerTree(std::span<const Lit> inputs);

  /// Adopts a previously built layout: the variables (and the clauses the
  /// layout's emitted_* bounds account for) already live in the receiving
  /// sink's variable space; further ensure_* calls emit only the delta.
  explicit TotalizerTree(CardinalityLayout layout);

  std::uint32_t size() const noexcept { return layout_.num_inputs; }

  /// Root bound covered by the upward half ((count >= j) -> o_j).
  std::uint32_t upward_bound() const noexcept {
    return node(layout_.root).emitted_up;
  }
  /// Root bound covered by the downward half (o_j -> (count >= j)).
  std::uint32_t downward_bound() const noexcept {
    return node(layout_.root).emitted_down;
  }

  /// Extends the upward half up to `bound` (clamped to size()).
  void ensure_upward(ClauseSink& sink, std::uint32_t bound);
  /// Extends the downward half up to `bound` (clamped to size()).
  void ensure_downward(ClauseSink& sink, std::uint32_t bound);

  /// Root output "at least j" (1-based). Requires j <= the largest bound
  /// materialised so far in either direction.
  Lit at_least(std::uint32_t j) const;

  /// Order chain over the materialised root outputs: o_{j+1} -> o_j.
  /// Semantically free (the count is monotone); makes a single ~o_j
  /// assumption falsify every higher output by propagation.
  void add_order_chain(ClauseSink& sink) const;

  /// Appends every auxiliary variable minted so far (see the free
  /// function over CardinalityLayout above).
  void append_aux_vars(std::vector<Var>& out) const {
    logic::append_aux_vars(layout_, out);
  }

  const CardinalityLayout& layout() const noexcept { return layout_; }

 private:
  CardinalityLayout::Node& node(std::int32_t id) {
    return layout_.nodes[static_cast<std::size_t>(id)];
  }
  const CardinalityLayout::Node& node(std::int32_t id) const {
    return layout_.nodes[static_cast<std::size_t>(id)];
  }

  std::int32_t build(std::span<const Lit> inputs, std::size_t lo,
                     std::size_t hi);
  /// Mints output variables of `id` up to min(size, bound).
  void materialize(ClauseSink& sink, std::int32_t id, std::uint32_t bound);
  void extend_up(ClauseSink& sink, std::int32_t id, std::uint32_t bound);
  void extend_down(ClauseSink& sink, std::int32_t id, std::uint32_t bound);

  CardinalityLayout layout_;
};

}  // namespace fta::logic
