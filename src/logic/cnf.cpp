#include "logic/cnf.hpp"

#include <cassert>

namespace fta::logic {

void Cnf::add_clause(Clause clause) {
  for (Lit l : clause) {
    assert(l.valid());
    ensure_var(l.var());
  }
  clauses_.push_back(std::move(clause));
}

std::size_t Cnf::num_literals() const noexcept {
  std::size_t n = 0;
  for (const auto& c : clauses_) n += c.size();
  return n;
}

bool Cnf::eval(const std::vector<bool>& assignment) const {
  for (const auto& clause : clauses_) {
    bool sat = false;
    for (Lit l : clause) {
      const bool v = assignment[l.var()];
      if (v != l.negated()) {
        sat = true;
        break;
      }
    }
    if (!sat) return false;
  }
  return true;
}

}  // namespace fta::logic
