// Propositional variables and literals shared by the CNF container, the
// CDCL solver and the MaxSAT layer.
//
// Variables are dense 0-based indices. A literal packs a variable and a
// sign into one 32-bit integer (MiniSat convention: lit = 2*var + sign,
// sign bit set means negated). Index() is directly usable for watch lists
// and assignment arrays.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <string>

namespace fta::logic {

using Var = std::uint32_t;

inline constexpr Var kNoVar = 0xffffffffu;

class Lit {
 public:
  constexpr Lit() noexcept : code_(0xffffffffu) {}

  static constexpr Lit make(Var v, bool negated = false) noexcept {
    return Lit((v << 1) | static_cast<std::uint32_t>(negated));
  }

  /// Positive literal of variable v.
  static constexpr Lit pos(Var v) noexcept { return make(v, false); }
  /// Negative literal of variable v.
  static constexpr Lit neg(Var v) noexcept { return make(v, true); }

  constexpr Var var() const noexcept { return code_ >> 1; }
  constexpr bool negated() const noexcept { return (code_ & 1u) != 0; }
  constexpr Lit operator~() const noexcept { return Lit(code_ ^ 1u); }

  /// Dense index in [0, 2*num_vars): suitable for direct array indexing.
  constexpr std::uint32_t index() const noexcept { return code_; }

  static constexpr Lit from_index(std::uint32_t idx) noexcept {
    return Lit(idx);
  }

  constexpr bool valid() const noexcept { return code_ != 0xffffffffu; }

  friend constexpr bool operator==(Lit a, Lit b) noexcept {
    return a.code_ == b.code_;
  }
  friend constexpr bool operator!=(Lit a, Lit b) noexcept {
    return a.code_ != b.code_;
  }
  friend constexpr bool operator<(Lit a, Lit b) noexcept {
    return a.code_ < b.code_;
  }

  /// DIMACS-style signed integer (1-based, negative when negated).
  constexpr std::int64_t to_dimacs() const noexcept {
    const auto v = static_cast<std::int64_t>(var()) + 1;
    return negated() ? -v : v;
  }

  std::string to_string() const {
    return std::to_string(to_dimacs());
  }

 private:
  constexpr explicit Lit(std::uint32_t code) noexcept : code_(code) {}
  std::uint32_t code_;
};

inline constexpr Lit kNoLit{};

/// Tri-state truth value used by solvers (true / false / unassigned).
enum class LBool : std::uint8_t { False = 0, True = 1, Undef = 2 };

inline constexpr LBool lbool_of(bool b) noexcept {
  return b ? LBool::True : LBool::False;
}

/// Truth value of literal `l` given its variable's value `v`.
inline constexpr LBool lit_value(Lit l, LBool v) noexcept {
  if (v == LBool::Undef) return LBool::Undef;
  const bool b = (v == LBool::True) != l.negated();
  return lbool_of(b);
}

}  // namespace fta::logic

template <>
struct std::hash<fta::logic::Lit> {
  std::size_t operator()(fta::logic::Lit l) const noexcept {
    return std::hash<std::uint32_t>{}(l.index());
  }
};
