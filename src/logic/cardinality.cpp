#include "logic/cardinality.hpp"

#include <algorithm>
#include <cassert>

namespace fta::logic {

TotalizerTree::TotalizerTree(std::span<const Lit> inputs) {
  assert(!inputs.empty());
  layout_.num_inputs = static_cast<std::uint32_t>(inputs.size());
  layout_.nodes.reserve(2 * inputs.size());
  layout_.root = build(inputs, 0, inputs.size());
}

TotalizerTree::TotalizerTree(CardinalityLayout layout)
    : layout_(std::move(layout)) {
  assert(!layout_.empty() && layout_.root >= 0);
}

std::int32_t TotalizerTree::build(std::span<const Lit> inputs, std::size_t lo,
                                  std::size_t hi) {
  const auto id = static_cast<std::int32_t>(layout_.nodes.size());
  layout_.nodes.push_back(CardinalityLayout::Node{});
  if (hi - lo == 1) {
    CardinalityLayout::Node& leaf = node(id);
    leaf.size = 1;
    // The input literal is the only output, in both directions trivially.
    leaf.emitted_up = 1;
    leaf.emitted_down = 1;
    leaf.outputs = {inputs[lo]};
    return id;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  const std::int32_t left = build(inputs, lo, mid);
  const std::int32_t right = build(inputs, mid, hi);
  CardinalityLayout::Node& n = node(id);
  n.left = left;
  n.right = right;
  n.size = node(left).size + node(right).size;
  return id;
}

void TotalizerTree::materialize(ClauseSink& sink, std::int32_t id,
                                std::uint32_t bound) {
  CardinalityLayout::Node& n = node(id);
  const std::uint32_t target = std::min(bound, n.size);
  while (n.outputs.size() < target) {
    n.outputs.push_back(Lit::pos(sink.new_var()));
  }
}

void TotalizerTree::ensure_upward(ClauseSink& sink, std::uint32_t bound) {
  extend_up(sink, layout_.root, std::min(bound, layout_.num_inputs));
}

void TotalizerTree::ensure_downward(ClauseSink& sink, std::uint32_t bound) {
  extend_down(sink, layout_.root, std::min(bound, layout_.num_inputs));
}

void TotalizerTree::extend_up(ClauseSink& sink, std::int32_t id,
                              std::uint32_t bound) {
  const std::uint32_t target = std::min(bound, node(id).size);
  if (target <= node(id).emitted_up) return;
  extend_up(sink, node(id).left, bound);
  extend_up(sink, node(id).right, bound);
  materialize(sink, id, target);

  CardinalityLayout::Node& n = node(id);
  const CardinalityLayout::Node& l = node(n.left);
  const CardinalityLayout::Node& r = node(n.right);
  // (>= i from left) & (>= j from right) -> (>= i+j here), for sums in
  // (emitted_up, target] and child counts that are materialised.
  const auto li_max = static_cast<std::uint32_t>(l.outputs.size());
  const auto rj_max = static_cast<std::uint32_t>(r.outputs.size());
  std::vector<Lit> clause;
  for (std::uint32_t i = 0; i <= li_max; ++i) {
    for (std::uint32_t j = 0; j <= rj_max; ++j) {
      const std::uint32_t sum = i + j;
      if (sum <= n.emitted_up || sum > target) continue;
      clause.clear();
      if (i > 0) clause.push_back(~l.outputs[i - 1]);
      if (j > 0) clause.push_back(~r.outputs[j - 1]);
      clause.push_back(n.outputs[sum - 1]);
      sink.add_clause(clause);
    }
  }
  n.emitted_up = target;
}

void TotalizerTree::extend_down(ClauseSink& sink, std::int32_t id,
                                std::uint32_t bound) {
  const std::uint32_t target = std::min(bound, node(id).size);
  if (target <= node(id).emitted_down) return;
  extend_down(sink, node(id).left, bound);
  extend_down(sink, node(id).right, bound);
  materialize(sink, id, target);

  CardinalityLayout::Node& n = node(id);
  const CardinalityLayout::Node& l = node(n.left);
  const CardinalityLayout::Node& r = node(n.right);
  // (<= i from left) & (<= j from right) -> (<= i+j here), i.e. the
  // contrapositive clause (l_{i+1} | r_{j+1} | ~o_{i+j+1}), where a
  // child literal is omitted when the child cannot count higher. Child
  // outputs up to min(child size, target) are materialised above, which
  // covers every i+1 <= target the sums below can reach. Counts above
  // `target` produce only skipped sums, so the ranges are capped there
  // (O(bound^2) per node instead of O(size^2) on wide gates).
  std::vector<Lit> clause;
  const std::uint32_t li_cap = std::min(l.size, target);
  const std::uint32_t rj_cap = std::min(r.size, target);
  for (std::uint32_t i = 0; i <= li_cap; ++i) {
    for (std::uint32_t j = 0; j <= rj_cap; ++j) {
      const std::uint32_t sum = i + j + 1;
      if (sum <= n.emitted_down || sum > target) continue;
      clause.clear();
      if (i < l.size) clause.push_back(l.outputs[i]);
      if (j < r.size) clause.push_back(r.outputs[j]);
      clause.push_back(~n.outputs[sum - 1]);
      sink.add_clause(clause);
    }
  }
  n.emitted_down = target;
}

Lit TotalizerTree::at_least(std::uint32_t j) const {
  const CardinalityLayout::Node& root = node(layout_.root);
  assert(j >= 1 && j <= root.outputs.size());
  return root.outputs[j - 1];
}

void TotalizerTree::add_order_chain(ClauseSink& sink) const {
  const CardinalityLayout::Node& root = node(layout_.root);
  for (std::size_t j = 1; j < root.outputs.size(); ++j) {
    const Lit clause[] = {~root.outputs[j], root.outputs[j - 1]};
    sink.add_clause(clause);
  }
}

void append_aux_vars(const CardinalityLayout& layout, std::vector<Var>& out) {
  for (const CardinalityLayout::Node& n : layout.nodes) {
    if (n.left < 0) continue;  // leaf outputs are the caller's inputs
    for (const Lit o : n.outputs) out.push_back(o.var());
  }
}

}  // namespace fta::logic
