// Boolean formula DAGs with structural sharing (hash-consing).
//
// Fault trees, their success-tree complements and intermediate rewrites are
// all represented as nodes in a FormulaStore. Node kinds cover the gates
// the library supports: variables, NOT, n-ary AND / OR, and AtLeast(k)
// ("k-of-n" voting gates). Constants True/False appear during folding.
//
// The store is append-only; NodeIds are stable and cheap to copy. Identical
// subterms are shared, which keeps dualization (fault tree <-> success
// tree) and k-of-n lowering polynomial.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "logic/lit.hpp"

namespace fta::logic {

using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = 0xffffffffu;

enum class NodeKind : std::uint8_t {
  False,
  True,
  Var,      // leaf; payload = variable index
  Not,      // 1 child
  And,      // >= 1 children
  Or,       // >= 1 children
  AtLeast,  // payload = k, children = inputs; true iff >= k children true
};

struct FormulaNode {
  NodeKind kind;
  std::uint32_t payload;          // Var index for Var, k for AtLeast, else 0.
  std::vector<NodeId> children;   // Empty for leaves/constants.
};

/// Statistics describing a formula rooted at some node.
struct FormulaStats {
  std::size_t nodes = 0;       // distinct DAG nodes reachable from the root
  std::size_t vars = 0;        // distinct variables
  std::size_t gates = 0;       // AND/OR/NOT/AtLeast nodes
  std::size_t max_depth = 0;   // longest root-to-leaf path
};

class FormulaStore {
 public:
  FormulaStore();

  // --- node constructors (hash-consed; n-ary ops are flattened, children
  //     deduplicated and constant-folded) -------------------------------

  NodeId constant(bool value) const noexcept {
    return value ? true_node_ : false_node_;
  }
  NodeId var(Var v);
  NodeId land(std::span<const NodeId> children);
  NodeId lor(std::span<const NodeId> children);
  NodeId lnot(NodeId child);
  NodeId at_least(std::uint32_t k, std::span<const NodeId> children);

  NodeId land(std::initializer_list<NodeId> c) {
    return land(std::span<const NodeId>(c.begin(), c.size()));
  }
  NodeId lor(std::initializer_list<NodeId> c) {
    return lor(std::span<const NodeId>(c.begin(), c.size()));
  }
  NodeId at_least(std::uint32_t k, std::initializer_list<NodeId> c) {
    return at_least(k, std::span<const NodeId>(c.begin(), c.size()));
  }

  // --- access -----------------------------------------------------------

  const FormulaNode& node(NodeId id) const { return nodes_[id]; }
  std::size_t size() const noexcept { return nodes_.size(); }
  std::uint32_t num_vars() const noexcept { return num_vars_; }

  // --- structural transformations ---------------------------------------

  /// Negation pushed to the leaves (NNF): gates are dualized via De Morgan;
  /// ¬AtLeast(k, xs) becomes AtLeast(n-k+1, ¬xs). Returns a node equivalent
  /// to ¬root.
  NodeId negate_nnf(NodeId root);

  /// The paper's Step-1 "success tree" gate flip: swaps AND<->OR (and
  /// AtLeast(k) -> AtLeast(n-k+1)) while keeping every variable positive.
  /// For a monotone root this equals negate_nnf with all leaf negations
  /// stripped — i.e. Y(t) in the paper, where y_i renames ¬x_i.
  NodeId dualize(NodeId root);

  /// Rewrites every AtLeast node into shared AND/OR structure using the
  /// recursion atleast(k, x1..xn) = (x1 ∧ atleast(k-1, x2..xn)) ∨
  /// atleast(k, x2..xn), memoized so the result is the O(n·k)
  /// sequential-counter DAG. Other nodes are preserved.
  NodeId lower_at_least(NodeId root);

  /// As above, but only expands AtLeast nodes for which `should_lower(k,
  /// n)` returns true; the rest survive (over rewritten children) for a
  /// cardinality-native encoder downstream (see logic/tseitin).
  NodeId lower_at_least(
      NodeId root,
      const std::function<bool(std::uint32_t k, std::size_t n)>& should_lower);

  /// Substitutes variables: any Var v with replacement[v] != kNoNode becomes
  /// that node. Useful for composing trees and for conditioning.
  NodeId substitute(NodeId root, const std::vector<NodeId>& replacement);

  /// True if no NOT appears and every gate is AND/OR/AtLeast over
  /// positive leaves (i.e. the function is monotone by construction).
  bool is_monotone(NodeId root) const;

  FormulaStats stats(NodeId root) const;

  /// Human-readable rendering, e.g. "((x1 & x2) | x3)".
  std::string to_string(NodeId root) const;

 private:
  NodeId intern(NodeKind kind, std::uint32_t payload,
                std::vector<NodeId> children);
  NodeId nary(NodeKind kind, std::span<const NodeId> children);

  struct NodeHash {
    const std::vector<FormulaNode>* nodes;
    std::size_t operator()(NodeId id) const noexcept;
  };
  struct NodeEq {
    const std::vector<FormulaNode>* nodes;
    bool operator()(NodeId a, NodeId b) const noexcept;
  };

  std::vector<FormulaNode> nodes_;
  std::unordered_map<NodeId, NodeId, NodeHash, NodeEq> unique_;
  NodeId false_node_;
  NodeId true_node_;
  std::uint32_t num_vars_ = 0;
};

}  // namespace fta::logic
