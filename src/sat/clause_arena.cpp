#include "sat/clause_arena.hpp"

#include "util/failpoint.hpp"

namespace fta::sat {

ClauseRef ClauseArena::alloc(std::span<const Lit> lits, bool learnt) {
  // Failpoint "arena.grow" models allocation failure in the hottest
  // growth path of the solver: fired only when this alloc would extend
  // the buffer's capacity (i.e. a real reallocation), not on every clause.
  if (buf_.size() + 2 + lits.size() > buf_.capacity()) {
    FTA_FAILPOINT("arena.grow");
  }
  const auto ref = static_cast<ClauseRef>(buf_.size());
  buf_.push_back((static_cast<std::uint32_t>(lits.size()) << 2) |
                 (learnt ? 1u : 0u));
  buf_.push_back(0);  // LBD slot
  for (Lit l : lits) buf_.push_back(l.index());
  return ref;
}

}  // namespace fta::sat
