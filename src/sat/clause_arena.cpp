#include "sat/clause_arena.hpp"

namespace fta::sat {

ClauseRef ClauseArena::alloc(std::span<const Lit> lits, bool learnt) {
  const auto ref = static_cast<ClauseRef>(buf_.size());
  buf_.push_back((static_cast<std::uint32_t>(lits.size()) << 2) |
                 (learnt ? 1u : 0u));
  buf_.push_back(0);  // LBD slot
  for (Lit l : lits) buf_.push_back(l.index());
  return ref;
}

}  // namespace fta::sat
