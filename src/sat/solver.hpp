// A CDCL SAT solver (MiniSat/Glucose lineage), built for this library.
//
// Features: two-watched-literal propagation over an arena-backed clause
// database, EVSIDS decision heuristic with phase saving, first-UIP conflict
// analysis with recursive clause minimisation, LBD-aware learnt-clause
// reduction, Luby restarts, incremental solving under assumptions with
// final-conflict (unsat core) extraction, conflict budgets and cooperative
// cancellation for portfolio use.
//
// The MaxSAT layer drives this solver both iteratively (solution-improving
// search) and incrementally (core-guided search over assumption literals).
//
// Persistent sessions: a Solver instance may be kept alive across many
// solve() calls with clause additions in between — learnt clauses, saved
// phases and variable activities all carry over, which is what makes the
// incremental MaxSAT layer (maxsat/incremental) pay off. Retractable
// constraints use activation selectors: new_selector() mints a guard
// variable, add_retractable_clause() attaches clauses that only bind while
// the selector is assumed true, and retire_selector() permanently
// deactivates (and garbage-collects) everything a selector guards.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "logic/cnf.hpp"
#include "logic/lit.hpp"
#include "logic/structure.hpp"
#include "sat/clause_arena.hpp"
#include "util/cancel.hpp"

namespace fta::sat {

using logic::LBool;
using logic::Lit;
using logic::Var;

enum class SolveResult : std::uint8_t {
  Sat,
  Unsat,
  Unknown,  ///< Budget exhausted or cancelled.
};

struct SolverStats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learnt_clauses = 0;
  std::uint64_t removed_clauses = 0;
  std::uint64_t minimized_literals = 0;
  /// Implications/conflicts served by the dedicated binary watch layer
  /// (only counts once structure hints enabled it).
  std::uint64_t binary_propagations = 0;
  /// Implied clauses added by gate-structural inprocessing.
  std::uint64_t inprocess_clauses = 0;
};

/// Process-wide SAT effort across every Solver instance, accumulated at
/// each solve() exit. The service's /v1/statsz "sat" block reports these
/// so operators can see the structure layer working (binaryPropagations
/// stays 0 when it never engages) without per-request plumbing.
struct GlobalSatCounters {
  std::uint64_t solves = 0;
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t binary_propagations = 0;
};

struct SolverOptions {
  double var_decay = 0.95;
  std::uint32_t restart_base = 100;     ///< Conflicts per Luby unit.
  double learnt_growth = 1.3;           ///< DB limit growth per reduction.
  std::uint32_t initial_learnt_cap = 8192;
  bool phase_saving = true;
  bool default_phase = false;           ///< Polarity picked for fresh vars.
  std::uint64_t conflict_budget = 0;    ///< 0 = unlimited.
  std::uint64_t seed = 0;               ///< Randomises initial activities.
  double random_pick_freq = 0.0;        ///< Probability of a random decision.
};

class Solver {
 public:
  explicit Solver(SolverOptions opts = {});

  // --- problem construction ---------------------------------------------

  Var new_var();
  void ensure_vars(std::uint32_t n);
  std::uint32_t num_vars() const noexcept {
    return static_cast<std::uint32_t>(assigns_.size());
  }

  /// Adds a clause; returns false if the database is now trivially UNSAT.
  bool add_clause(std::span<const Lit> lits);
  bool add_clause(std::initializer_list<Lit> lits) {
    return add_clause(std::span<const Lit>(lits.begin(), lits.size()));
  }
  bool add_cnf(const logic::Cnf& cnf);

  /// True while no level-0 contradiction has been derived.
  bool ok() const noexcept { return ok_; }

  // --- solving -------------------------------------------------------------

  SolveResult solve() { return solve({}); }
  SolveResult solve(std::span<const Lit> assumptions);

  /// Process-wide count of solve() calls across every Solver instance.
  /// Tests diff it around an operation to prove a path did zero SAT work
  /// (e.g. a memoized repeat request).
  static std::uint64_t global_solve_calls() noexcept;

  /// Process-wide effort aggregates (see GlobalSatCounters).
  static GlobalSatCounters global_counters() noexcept;

  /// After Sat: the satisfying assignment (index = variable).
  const std::vector<bool>& model() const noexcept { return model_; }

  /// After Unsat under assumptions: a subset of the assumptions that is
  /// already unsatisfiable together with the clauses ("final core").
  /// Empty when the clause set is UNSAT regardless of assumptions.
  const std::vector<Lit>& unsat_core() const noexcept { return core_; }

  // --- persistent-session API -------------------------------------------

  /// Marks `v` as frozen: a variable whose meaning outlives any single
  /// solve (soft-clause indicators, basic events). The solver itself never
  /// eliminates variables, so today this is bookkeeping consumed by the
  /// incremental MaxSAT session (frozen variables must never be minted as
  /// activation selectors, and future in-solver simplification must leave
  /// them untouched).
  void set_frozen(Var v, bool frozen);
  bool is_frozen(Var v) const noexcept {
    return v < frozen_.size() && frozen_[v];
  }

  /// Mints an activation selector: a fresh variable `s`, returned as the
  /// positive literal to assume while the clauses guarded by it should
  /// bind. Selectors are tracked so retire_selector() can assert they are
  /// never reused.
  Lit new_selector();

  /// Adds `lits` as a clause that only binds while `selector` (from
  /// new_selector) is assumed true: the stored clause is (lits | ~s).
  /// Returns false if the database became trivially UNSAT (only possible
  /// via propagation of earlier units, not via the guarded clause itself).
  bool add_retractable_clause(std::span<const Lit> lits, Lit selector);
  bool add_retractable_clause(std::initializer_list<Lit> lits, Lit selector) {
    return add_retractable_clause(
        std::span<const Lit>(lits.begin(), lits.size()), selector);
  }

  /// Permanently deactivates a selector: asserts ~s at level 0 (all its
  /// guarded clauses are satisfied forever) and deletes the now-vacuous
  /// guarded clauses plus any learnt clause mentioning the selector, so a
  /// long-lived session does not accumulate dead blocking constraints.
  void retire_selector(Lit selector);

  /// Drops the learnt-clause database (except clauses locked as reasons).
  /// Problem clauses, assignments, saved phases and activities survive;
  /// used by long-lived sessions to bound memory.
  void clear_learnts();

  /// Approximate heap footprint of the solver (arena, watches, per-var
  /// metadata) — the signal sessions use for their memory cap.
  std::size_t memory_bytes() const noexcept;

  // --- control ---------------------------------------------------------

  void set_cancel_token(util::CancelTokenPtr token) { cancel_ = std::move(token); }
  void set_conflict_budget(std::uint64_t budget) { opts_.conflict_budget = budget; }
  const SolverStats& stats() const noexcept { return stats_; }
  const SolverOptions& options() const noexcept { return opts_; }

  /// Suggests a polarity to try first for `v` (overrides saved phase once).
  void set_polarity_hint(Var v, bool value) { polarity_[v] = value; }

  // --- structure-aware layer --------------------------------------------
  //
  /// Installs gate-map structure hints (logic/structure) ahead of clause
  /// loading: seeds activities root-first with depth decay, initialises
  /// saved phases from forced gate polarities, and enables the dedicated
  /// binary watch layer so the two-literal gate-definition halves
  /// propagate without a full clause dereference. Under StructureMode::Full
  /// with `exact` hints (the clause set is the untouched Tseitin output)
  /// it additionally runs gate-structural inprocessing — equivalent-gate
  /// merging and single-fanout chain collapse — adding the implied
  /// binaries before the first conflict. Must be called while the clause
  /// database is still empty; a no-op under StructureMode::Off.
  void install_structure(const logic::StructureHints& hints,
                         logic::StructureMode mode, bool exact);

 private:
  struct Watcher {
    ClauseRef cref;
    Lit blocker;
  };
  /// Inline binary watches (the structure layer's compact binary form):
  /// size-2 clauses are tagged with kBinRef in the shared watch lists and
  /// carry the implied literal as the blocker, so the hot path resolves
  /// them without an arena dereference, a watch migration, or a second
  /// per-literal list. Clause refs are arena word offsets and stay well
  /// below the tag bit.
  static constexpr ClauseRef kBinRef = 0x80000000u;

  // Core search.
  ClauseRef propagate();
  void analyze(ClauseRef conflict, std::vector<Lit>& learnt, std::uint32_t& bt_level,
               std::uint32_t& lbd);
  void analyze_final(Lit p);
  bool lit_redundant(Lit p, std::uint32_t abstract_levels);
  void backtrack(std::uint32_t level);
  Lit pick_branch();
  void reduce_db();
  void garbage_collect_if_needed();

  // Assignment plumbing.
  LBool value(Var v) const noexcept { return assigns_[v]; }
  LBool value(Lit l) const noexcept { return logic::lit_value(l, assigns_[l.var()]); }
  std::uint32_t level(Var v) const noexcept { return level_[v]; }
  std::uint32_t decision_level() const noexcept {
    return static_cast<std::uint32_t>(trail_lim_.size());
  }
  void enqueue(Lit l, ClauseRef reason);
  void attach(ClauseRef cref);
  void detach(ClauseRef cref);
  bool locked(ClauseRef cref);

  // Heuristics.
  void bump_var(Var v);
  void decay_var_activity() { var_inc_ /= opts_.var_decay; }
  void heap_insert(Var v);
  void heap_update(Var v);
  Var heap_pop();
  bool heap_empty() const noexcept { return heap_.empty(); }
  void heap_sift_up(std::size_t i);
  void heap_sift_down(std::size_t i);

  std::uint32_t compute_lbd(std::span<const Lit> lits);
  bool cancelled() const noexcept { return cancel_ && cancel_->cancelled(); }

  SolverOptions opts_;
  bool ok_ = true;

  void inprocess_structure(const logic::StructureHints& hints);

  ClauseArena arena_;
  std::vector<ClauseRef> problem_clauses_;
  std::vector<ClauseRef> learnt_clauses_;
  std::vector<std::vector<Watcher>> watches_;  // indexed by Lit::index()
  // Inline binary watch tagging, enabled by install_structure
  // (off = byte-identical legacy behaviour).
  bool bin_enabled_ = false;

  std::vector<LBool> assigns_;
  std::vector<bool> frozen_;         // session-pinned variables
  std::vector<bool> selector_;       // activation selectors (retractable layer)
  std::vector<bool> polarity_;       // saved phases
  std::vector<std::uint32_t> level_;
  std::vector<ClauseRef> reason_;
  std::vector<Lit> trail_;
  std::vector<std::uint32_t> trail_lim_;
  std::size_t qhead_ = 0;

  // EVSIDS heap.
  std::vector<double> activity_;
  std::vector<std::int32_t> heap_pos_;  // -1 when absent
  std::vector<Var> heap_;
  double var_inc_ = 1.0;

  // Scratch for analyze().
  std::vector<std::uint8_t> seen_;
  std::vector<Lit> analyze_stack_;
  std::vector<Var> to_clear_;
  std::vector<std::uint64_t> lbd_stamp_;
  std::uint64_t lbd_counter_ = 0;

  std::vector<bool> model_;
  std::vector<Lit> core_;
  std::vector<Lit> assumptions_;

  std::uint32_t learnt_cap_ = 0;
  SolverStats stats_;
  util::CancelTokenPtr cancel_;
  std::uint64_t rng_state_;
};

}  // namespace fta::sat
