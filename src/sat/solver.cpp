#include "sat/solver.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <unordered_map>

#include "util/failpoint.hpp"
#include "util/luby.hpp"

namespace fta::sat {

namespace {
constexpr double kActivityRescale = 1e100;
}

Solver::Solver(SolverOptions opts)
    : opts_(opts), rng_state_(opts.seed * 2654435761u + 1) {
  // Decision levels range over [0, num_vars]; keep one extra stamp slot.
  lbd_stamp_.push_back(0);
}

Var Solver::new_var() {
  const Var v = static_cast<Var>(assigns_.size());
  assigns_.push_back(LBool::Undef);
  frozen_.push_back(false);
  selector_.push_back(false);
  polarity_.push_back(opts_.default_phase);
  level_.push_back(0);
  reason_.push_back(kNoClause);
  double act = 0.0;
  if (opts_.seed != 0) {
    // Small random perturbation diversifies portfolio members.
    rng_state_ ^= rng_state_ << 13;
    rng_state_ ^= rng_state_ >> 7;
    rng_state_ ^= rng_state_ << 17;
    act = 1e-9 * static_cast<double>(rng_state_ % 1024);
  }
  activity_.push_back(act);
  heap_pos_.push_back(-1);
  seen_.push_back(0);
  lbd_stamp_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  heap_insert(v);
  return v;
}

void Solver::ensure_vars(std::uint32_t n) {
  while (num_vars() < n) new_var();
}

// ---------------------------------------------------------------- heap --

void Solver::heap_sift_up(std::size_t i) {
  const Var v = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (activity_[heap_[parent]] >= activity_[v]) break;
    heap_[i] = heap_[parent];
    heap_pos_[heap_[i]] = static_cast<std::int32_t>(i);
    i = parent;
  }
  heap_[i] = v;
  heap_pos_[v] = static_cast<std::int32_t>(i);
}

void Solver::heap_sift_down(std::size_t i) {
  const Var v = heap_[i];
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t left = 2 * i + 1;
    if (left >= n) break;
    const std::size_t right = left + 1;
    const std::size_t child =
        (right < n && activity_[heap_[right]] > activity_[heap_[left]]) ? right
                                                                        : left;
    if (activity_[heap_[child]] <= activity_[v]) break;
    heap_[i] = heap_[child];
    heap_pos_[heap_[i]] = static_cast<std::int32_t>(i);
    i = child;
  }
  heap_[i] = v;
  heap_pos_[v] = static_cast<std::int32_t>(i);
}

void Solver::heap_insert(Var v) {
  if (heap_pos_[v] >= 0) return;
  heap_.push_back(v);
  heap_pos_[v] = static_cast<std::int32_t>(heap_.size() - 1);
  heap_sift_up(heap_.size() - 1);
}

void Solver::heap_update(Var v) {
  if (heap_pos_[v] >= 0) heap_sift_up(static_cast<std::size_t>(heap_pos_[v]));
}

Var Solver::heap_pop() {
  const Var top = heap_[0];
  heap_pos_[top] = -1;
  if (heap_.size() > 1) {
    heap_[0] = heap_.back();
    heap_pos_[heap_[0]] = 0;
    heap_.pop_back();
    heap_sift_down(0);
  } else {
    heap_.pop_back();
  }
  return top;
}

void Solver::bump_var(Var v) {
  activity_[v] += var_inc_;
  if (activity_[v] > kActivityRescale) {
    for (auto& a : activity_) a *= 1.0 / kActivityRescale;
    var_inc_ *= 1.0 / kActivityRescale;
  }
  heap_update(v);
}

// ------------------------------------------------------------- clauses --

void Solver::attach(ClauseRef cref) {
  ClauseView c = arena_.view(cref);
  assert(c.size() >= 2);
  assert((cref & kBinRef) == 0 && "arena offset collides with the bin tag");
  if (bin_enabled_ && c.size() == 2) {
    // Inline binary form: the blocker IS the implied literal, so the
    // tagged entry resolves without ever touching the arena.
    watches_[(~c[0]).index()].push_back({cref | kBinRef, c[1]});
    watches_[(~c[1]).index()].push_back({cref | kBinRef, c[0]});
    return;
  }
  watches_[(~c[0]).index()].push_back({cref, c[1]});
  watches_[(~c[1]).index()].push_back({cref, c[0]});
}

void Solver::detach(ClauseRef cref) {
  ClauseView c = arena_.view(cref);
  const ClauseRef key =
      bin_enabled_ && c.size() == 2 ? cref | kBinRef : cref;
  auto remove_from = [&](Lit watched) {
    auto& ws = watches_[(~watched).index()];
    for (std::size_t i = 0; i < ws.size(); ++i) {
      if (ws[i].cref == key) {
        ws[i] = ws.back();
        ws.pop_back();
        return;
      }
    }
    assert(false && "watcher not found");
  };
  remove_from(c[0]);
  remove_from(c[1]);
}

bool Solver::locked(ClauseRef cref) {
  ClauseView c = arena_.view(cref);
  const Lit first = c[0];
  if (value(first) == LBool::True && reason_[first.var()] == cref) return true;
  // Binary-layer reasons skip the c[0]-is-implied fix-up, so the implied
  // literal of a size-2 reason may sit at slot 1.
  return c.size() == 2 && value(c[1]) == LBool::True &&
         reason_[c[1].var()] == cref;
}

bool Solver::add_clause(std::span<const Lit> lits) {
  assert(decision_level() == 0);
  if (!ok_) return false;

  // Level-0 simplification: sort, drop duplicates/false literals, detect
  // tautologies and already-satisfied clauses.
  std::vector<Lit> c(lits.begin(), lits.end());
  for (Lit l : c) ensure_vars(l.var() + 1);
  std::sort(c.begin(), c.end());
  c.erase(std::unique(c.begin(), c.end()), c.end());
  std::vector<Lit> kept;
  kept.reserve(c.size());
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (i + 1 < c.size() && c[i + 1] == ~c[i]) return true;  // tautology
    const LBool v = value(c[i]);
    if (v == LBool::True) return true;  // satisfied at level 0
    if (v == LBool::False) continue;    // falsified at level 0: drop
    kept.push_back(c[i]);
  }

  if (kept.empty()) {
    ok_ = false;
    return false;
  }
  if (kept.size() == 1) {
    enqueue(kept[0], kNoClause);
    ok_ = propagate() == kNoClause;
    return ok_;
  }
  const ClauseRef cref = arena_.alloc(kept, /*learnt=*/false);
  problem_clauses_.push_back(cref);
  attach(cref);
  return true;
}

bool Solver::add_cnf(const logic::Cnf& cnf) {
  ensure_vars(cnf.num_vars());
  for (const auto& clause : cnf.clauses()) {
    if (!add_clause(clause)) return false;
  }
  return true;
}

// --------------------------------------------------------------- search --

void Solver::enqueue(Lit l, ClauseRef reason) {
  const Var v = l.var();
  assert(value(v) == LBool::Undef);
  assigns_[v] = logic::lbool_of(!l.negated());
  level_[v] = decision_level();
  reason_[v] = reason;
  trail_.push_back(l);
}

ClauseRef Solver::propagate() {
  ClauseRef conflict = kNoClause;
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];
    ++stats_.propagations;
    auto& ws = watches_[p.index()];
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < ws.size()) {
      const Watcher w = ws[i];
      const LBool bv = value(w.blocker);
      if (bv == LBool::True) {
        ws[j++] = ws[i++];
        continue;
      }
      if (w.cref & kBinRef) {
        // Inline binary watch: the blocker is the implied literal, so
        // the entry resolves right here — no arena dereference, no
        // watch migration. No arena fix-up either: the stored clause
        // may keep the implied literal at either slot, because every
        // reason traversal (analyze, lit_redundant, analyze_final,
        // locked) resolves by variable rather than by position.
        ws[j++] = ws[i++];
        ++stats_.binary_propagations;
        const ClauseRef reason = w.cref & ~kBinRef;
        if (bv == LBool::False) {
          conflict = reason;
          qhead_ = trail_.size();
          while (i < ws.size()) ws[j++] = ws[i++];
          continue;
        }
        enqueue(w.blocker, reason);
        continue;
      }
      ClauseView c = arena_.view(w.cref);
      const Lit false_lit = ~p;
      if (c[0] == false_lit) {
        c.set(0, c[1]);
        c.set(1, false_lit);
      }
      ++i;
      const Lit first = c[0];
      const Watcher w_new{w.cref, first};
      if (first != w.blocker && value(first) == LBool::True) {
        ws[j++] = w_new;
        continue;
      }
      // Look for a new literal to watch.
      bool found = false;
      for (std::uint32_t k = 2; k < c.size(); ++k) {
        if (value(c[k]) != LBool::False) {
          c.set(1, c[k]);
          c.set(k, false_lit);
          watches_[(~c[1]).index()].push_back(w_new);
          found = true;
          break;
        }
      }
      if (found) continue;
      // Clause is unit or conflicting.
      ws[j++] = w_new;
      if (value(first) == LBool::False) {
        conflict = w.cref;
        qhead_ = trail_.size();
        while (i < ws.size()) ws[j++] = ws[i++];
      } else {
        enqueue(first, w.cref);
      }
    }
    ws.resize(j);
    if (conflict != kNoClause) break;
  }
  return conflict;
}

void Solver::backtrack(std::uint32_t target_level) {
  if (decision_level() <= target_level) return;
  const std::size_t bound = trail_lim_[target_level];
  for (std::size_t i = trail_.size(); i-- > bound;) {
    const Var v = trail_[i].var();
    assigns_[v] = LBool::Undef;
    if (opts_.phase_saving) polarity_[v] = !trail_[i].negated();
    reason_[v] = kNoClause;
    heap_insert(v);
  }
  trail_.resize(bound);
  trail_lim_.resize(target_level);
  qhead_ = bound;
}

std::uint32_t Solver::compute_lbd(std::span<const Lit> lits) {
  ++lbd_counter_;
  std::uint32_t lbd = 0;
  for (Lit l : lits) {
    const std::uint32_t lv = level(l.var());
    if (lv == 0) continue;
    if (lbd_stamp_[lv] != lbd_counter_) {
      lbd_stamp_[lv] = lbd_counter_;
      ++lbd;
    }
  }
  return lbd == 0 ? 1 : lbd;
}

void Solver::analyze(ClauseRef conflict, std::vector<Lit>& learnt,
                     std::uint32_t& bt_level, std::uint32_t& lbd) {
  learnt.clear();
  learnt.push_back(logic::kNoLit);  // placeholder for the asserting literal
  std::uint32_t path_count = 0;
  Lit p = logic::kNoLit;
  std::size_t index = trail_.size();

  ClauseRef reason = conflict;
  do {
    assert(reason != kNoClause);
    ClauseView c = arena_.view(reason);
    if (c.learnt()) {
      // Glucose-style dynamic LBD update keeps good clauses alive.
      ++lbd_counter_;
      std::uint32_t new_lbd = 0;
      for (std::uint32_t j = 0; j < c.size(); ++j) {
        const std::uint32_t lv = level(c[j].var());
        if (lv == 0) continue;
        if (lbd_stamp_[lv] != lbd_counter_) {
          lbd_stamp_[lv] = lbd_counter_;
          ++new_lbd;
        }
      }
      if (new_lbd != 0 && new_lbd < c.lbd()) c.set_lbd(new_lbd);
    }
    // Resolve by variable, not position: a size-2 reason from the binary
    // watch layer may keep the implied literal at either slot.
    for (std::uint32_t j = 0; j < c.size(); ++j) {
      const Lit q = c[j];
      const Var v = q.var();
      if (p != logic::kNoLit && v == p.var()) continue;
      if (!seen_[v] && level(v) > 0) {
        bump_var(v);
        seen_[v] = 1;
        if (level(v) >= decision_level()) {
          ++path_count;
        } else {
          learnt.push_back(q);
        }
      }
    }
    // Select next literal on the current decision level to resolve on.
    while (!seen_[trail_[index - 1].var()]) --index;
    p = trail_[--index];
    reason = reason_[p.var()];
    seen_[p.var()] = 0;
    --path_count;
  } while (path_count > 0);
  learnt[0] = ~p;

  // Conflict-clause minimisation (deep check against implied literals).
  to_clear_.clear();
  for (std::size_t k = 1; k < learnt.size(); ++k) to_clear_.push_back(learnt[k].var());
  std::uint32_t abstract_levels = 0;
  for (std::size_t k = 1; k < learnt.size(); ++k) {
    abstract_levels |= 1u << (level(learnt[k].var()) & 31);
  }
  std::size_t kept = 1;
  for (std::size_t k = 1; k < learnt.size(); ++k) {
    const Var v = learnt[k].var();
    if (reason_[v] == kNoClause || !lit_redundant(learnt[k], abstract_levels)) {
      learnt[kept++] = learnt[k];
    } else {
      ++stats_.minimized_literals;
    }
  }
  learnt.resize(kept);
  for (Var v : to_clear_) seen_[v] = 0;

  // Find the backtrack level: highest level among learnt[1..].
  bt_level = 0;
  if (learnt.size() > 1) {
    std::size_t max_idx = 1;
    for (std::size_t k = 2; k < learnt.size(); ++k) {
      if (level(learnt[k].var()) > level(learnt[max_idx].var())) max_idx = k;
    }
    std::swap(learnt[1], learnt[max_idx]);
    bt_level = level(learnt[1].var());
  }
  lbd = compute_lbd(learnt);
}

bool Solver::lit_redundant(Lit p, std::uint32_t abstract_levels) {
  analyze_stack_.clear();
  analyze_stack_.push_back(p);
  const std::size_t top = to_clear_.size();
  while (!analyze_stack_.empty()) {
    const Lit q = analyze_stack_.back();
    analyze_stack_.pop_back();
    assert(reason_[q.var()] != kNoClause);
    ClauseView c = arena_.view(reason_[q.var()]);
    for (std::uint32_t i = 0; i < c.size(); ++i) {
      const Lit l = c[i];
      const Var v = l.var();
      if (v == q.var() || seen_[v] || level(v) == 0) continue;
      if (reason_[v] != kNoClause &&
          ((1u << (level(v) & 31)) & abstract_levels) != 0) {
        seen_[v] = 1;
        analyze_stack_.push_back(l);
        to_clear_.push_back(v);
      } else {
        for (std::size_t j = top; j < to_clear_.size(); ++j) seen_[to_clear_[j]] = 0;
        to_clear_.resize(top);
        return false;
      }
    }
  }
  return true;
}

void Solver::analyze_final(Lit p) {
  core_.clear();
  core_.push_back(~p);  // the assumption literal itself
  if (decision_level() == 0) return;
  seen_[p.var()] = 1;
  for (std::size_t i = trail_.size(); i-- > trail_lim_[0];) {
    const Var v = trail_[i].var();
    if (!seen_[v]) continue;
    if (reason_[v] == kNoClause) {
      assert(level(v) > 0);
      // A decision inside the assumption prefix: part of the core.
      core_.push_back(trail_[i]);
    } else {
      ClauseView c = arena_.view(reason_[v]);
      for (std::uint32_t j = 0; j < c.size(); ++j) {
        if (c[j].var() != v && level(c[j].var()) > 0) seen_[c[j].var()] = 1;
      }
    }
    seen_[v] = 0;
  }
  seen_[p.var()] = 0;
}

Lit Solver::pick_branch() {
  // Occasional random decisions (portfolio diversification).
  if (opts_.random_pick_freq > 0.0) {
    rng_state_ ^= rng_state_ << 13;
    rng_state_ ^= rng_state_ >> 7;
    rng_state_ ^= rng_state_ << 17;
    const double r = static_cast<double>(rng_state_ % 100000) / 100000.0;
    if (r < opts_.random_pick_freq && !heap_.empty()) {
      const Var v = heap_[rng_state_ % heap_.size()];
      if (value(v) == LBool::Undef) return Lit::make(v, !polarity_[v]);
    }
  }
  while (!heap_empty()) {
    const Var v = heap_pop();
    if (value(v) == LBool::Undef) return Lit::make(v, !polarity_[v]);
  }
  return logic::kNoLit;
}

void Solver::reduce_db() {
  // Glucose-flavoured policy: never remove locked clauses or glue clauses
  // (LBD <= 2); among the rest drop the worse half by (LBD, size).
  std::vector<ClauseRef> candidates;
  candidates.reserve(learnt_clauses_.size());
  std::vector<ClauseRef> keep;
  keep.reserve(learnt_clauses_.size());
  for (ClauseRef cref : learnt_clauses_) {
    ClauseView c = arena_.view(cref);
    if (locked(cref) || c.lbd() <= 2 || c.size() <= 2) {
      keep.push_back(cref);
    } else {
      candidates.push_back(cref);
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [this](ClauseRef a, ClauseRef b) {
              ClauseView ca = arena_.view(a);
              ClauseView cb = arena_.view(b);
              if (ca.lbd() != cb.lbd()) return ca.lbd() < cb.lbd();
              return ca.size() < cb.size();
            });
  const std::size_t keep_count = candidates.size() / 2;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (i < keep_count) {
      keep.push_back(candidates[i]);
    } else {
      detach(candidates[i]);
      arena_.view(candidates[i]).mark_deleted();
      arena_.note_deleted(candidates[i]);
      ++stats_.removed_clauses;
    }
  }
  learnt_clauses_ = std::move(keep);
  garbage_collect_if_needed();
}

void Solver::garbage_collect_if_needed() {
  if (arena_.wasted() * 3 < arena_.size()) return;
  std::unordered_map<ClauseRef, ClauseRef> remap;
  remap.reserve(problem_clauses_.size() + learnt_clauses_.size());
  arena_.collect([&](ClauseRef from, ClauseRef to) { remap.emplace(from, to); });
  auto patch = [&](ClauseRef& ref) {
    if (ref != kNoClause) ref = remap.at(ref);
  };
  for (auto& ref : problem_clauses_) patch(ref);
  for (auto& ref : learnt_clauses_) patch(ref);
  for (Lit l : trail_) patch(reason_[l.var()]);
  // Watches are rebuilt wholesale; the watched pair is stored in the first
  // two literal slots, which compaction preserves.
  for (auto& ws : watches_) ws.clear();
  for (ClauseRef cref : problem_clauses_) attach(cref);
  for (ClauseRef cref : learnt_clauses_) attach(cref);
}

// ------------------------------------------------- persistent sessions --

void Solver::set_frozen(Var v, bool frozen) {
  ensure_vars(v + 1);
  assert(!(frozen && selector_[v]) && "selectors must never be frozen");
  frozen_[v] = frozen;
}

Lit Solver::new_selector() {
  const Var v = new_var();
  selector_[v] = true;
  // Selectors default to "inactive": if the search ever branches on one,
  // trying false first keeps the guarded clauses vacuously satisfied.
  polarity_[v] = false;
  return Lit::pos(v);
}

bool Solver::add_retractable_clause(std::span<const Lit> lits, Lit selector) {
  assert(!selector.negated() && selector.var() < num_vars() &&
         selector_[selector.var()] && "guard must come from new_selector()");
  std::vector<Lit> guarded(lits.begin(), lits.end());
  guarded.push_back(~selector);
  return add_clause(guarded);
}

void Solver::retire_selector(Lit selector) {
  assert(!selector.negated() && selector.var() < num_vars() &&
         selector_[selector.var()] && "not an active selector");
  if (!ok_) return;
  assert(decision_level() == 0);
  // ~s at level 0: every guarded clause is satisfied forever.
  if (!add_clause({~selector})) return;
  // Garbage-collect what the selector guarded. Clauses containing ~s are
  // permanently satisfied; learnt clauses containing s carry a permanently
  // false literal and would only rot in the database. Locked clauses
  // (reasons of level-0 assignments) must stay.
  const Lit dead_true = ~selector;
  const Lit dead_false = selector;
  auto purge = [&](std::vector<ClauseRef>& list, bool learnt_list) {
    std::size_t kept = 0;
    for (ClauseRef cref : list) {
      ClauseView c = arena_.view(cref);
      bool drop = false;
      for (std::uint32_t i = 0; i < c.size() && !drop; ++i) {
        drop = c[i] == dead_true || (learnt_list && c[i] == dead_false);
      }
      if (drop && !locked(cref)) {
        detach(cref);
        c.mark_deleted();
        arena_.note_deleted(cref);
        ++stats_.removed_clauses;
      } else {
        list[kept++] = cref;
      }
    }
    list.resize(kept);
  };
  purge(problem_clauses_, false);
  purge(learnt_clauses_, true);
  garbage_collect_if_needed();
}

void Solver::clear_learnts() {
  std::size_t kept = 0;
  for (ClauseRef cref : learnt_clauses_) {
    if (locked(cref)) {
      learnt_clauses_[kept++] = cref;
      continue;
    }
    detach(cref);
    arena_.view(cref).mark_deleted();
    arena_.note_deleted(cref);
    ++stats_.removed_clauses;
  }
  learnt_clauses_.resize(kept);
  learnt_cap_ = opts_.initial_learnt_cap;
  garbage_collect_if_needed();
}

std::size_t Solver::memory_bytes() const noexcept {
  std::size_t bytes = arena_.size() * sizeof(std::uint32_t);
  for (const auto& ws : watches_) bytes += ws.capacity() * sizeof(Watcher);
  // Per-variable metadata (assignment, phase, level, reason, activity,
  // heap slot, analyze scratch, LBD stamp): ~40 bytes each.
  bytes += static_cast<std::size_t>(num_vars()) * 40;
  bytes += (problem_clauses_.capacity() + learnt_clauses_.capacity()) *
           sizeof(ClauseRef);
  bytes += trail_.capacity() * sizeof(Lit);
  return bytes;
}

// ------------------------------------------------ structure-aware layer --

void Solver::install_structure(const logic::StructureHints& hints,
                               logic::StructureMode mode, bool exact) {
  if (mode == logic::StructureMode::Off) return;
  // The binary layer dispatches attach/detach on a flag that must not
  // flip while clauses are attached; engines install hints right after
  // variable allocation, before any clause loading.
  assert(problem_clauses_.empty() && learnt_clauses_.empty() &&
         "install structure hints before loading clauses");
  ensure_vars(hints.num_vars);
  bin_enabled_ = true;

  // Root-biased depth-weighted activity seeding: the search decides the
  // macro shape near the root first and lets propagation fill the deep
  // subtrees. Seeds sit well above the portfolio's random perturbation
  // (~1e-6) and below one conflict bump (var_inc_ = 1.0), so learned
  // activity takes over as soon as conflicts start flowing. Only the
  // shallowest band is seeded, with a hard count cap: gate variables are
  // almost always implied by the MaxSAT layer's soft assumptions before
  // any decision reaches them, and every seeded-but-assigned variable is
  // an extra dead heap pop on every subsequent solve.
  constexpr double kDepthDecay = 0.8;
  constexpr double kSeedScale = 0.5;
  constexpr std::size_t kSeedCountCap = 64;
  const std::size_t limit =
      std::min<std::size_t>(hints.depth.size(), num_vars());
  std::vector<std::pair<std::uint32_t, Var>> band;
  for (Var v = 0; v < limit; ++v) {
    const std::uint32_t d = hints.depth[v];
    if (d != logic::StructureHints::kNoDepth) band.emplace_back(d, v);
  }
  if (band.size() > kSeedCountCap) {
    std::nth_element(band.begin(), band.begin() + kSeedCountCap, band.end());
    band.resize(kSeedCountCap);
  }
  for (const auto& [d, v] : band) {
    activity_[v] += kSeedScale * std::pow(kDepthDecay, static_cast<double>(d));
    heap_update(v);
  }

  // Phase initialization from forced polarities: the asserted root and
  // every gate on an AND-only path below it hold in all models, so the
  // first descent should not waste conflicts discovering that.
  if (hints.root != logic::kNoLit && hints.root.var() < num_vars()) {
    polarity_[hints.root.var()] = !hints.root.negated();
  }
  for (const logic::GateDef& g : hints.gates) {
    if (g.forced && g.out < num_vars()) polarity_[g.out] = true;
  }

  if (mode == logic::StructureMode::Full && exact) inprocess_structure(hints);
}

void Solver::inprocess_structure(const logic::StructureHints& hints) {
  // Gate-structural inprocessing: strengthen the clause set from the gate
  // map alone (no BIG recomputation) before the first conflict. The added
  // clauses pin auxiliary gate variables to their semantic values and
  // shortcut implication chains; they never touch event variables, so the
  // projection onto the inputs — and with it every cut-set optimum — is
  // unchanged.
  FTA_FAILPOINT("sat.inprocess");
  using logic::GateDef;
  const auto& gates = hints.gates;
  if (gates.empty() || !ok_) return;

  // Definition completion: the polarity-aware encoding emits only the
  // half of each gate definition its use polarity needs, which leaves
  // the gate variable unconstrained in the other direction. Every model-
  // completion pass then has to *decide* it — one heap pop per gate per
  // SAT call — instead of deriving it by propagation. Emitting the
  // absent half turns those decisions into (mostly binary) propagations.
  std::vector<Lit> scratch;
  for (const GateDef& g : gates) {
    if (!ok_) break;
    if (g.kind == GateDef::Kind::Card) continue;
    if (g.pos_half == g.neg_half) continue;  // complete or empty already
    const Lit out = Lit::pos(g.out);
    const bool and_gate = g.kind == GateDef::Kind::And;
    if (and_gate == g.pos_half) {
      // Missing: fanin conjunction/disjunction implies out.
      //   And: {out, ~f1, ..., ~fk}   Or: binaries {~fi, out}.
      if (and_gate) {
        scratch.assign(1, out);
        for (const Lit f : g.fanin) scratch.push_back(~f);
        add_clause(scratch);
        ++stats_.inprocess_clauses;
      } else {
        for (const Lit f : g.fanin) {
          if (!ok_) break;
          const Lit clause[2] = {~f, out};
          add_clause(clause);
          ++stats_.inprocess_clauses;
        }
      }
    } else {
      // Missing: out implies its definition.
      //   And: binaries {~out, fi}   Or: {~out, f1, ..., fk}.
      if (and_gate) {
        for (const Lit f : g.fanin) {
          if (!ok_) break;
          const Lit clause[2] = {~out, f};
          add_clause(clause);
          ++stats_.inprocess_clauses;
        }
      } else {
        scratch.assign(1, ~out);
        for (const Lit f : g.fanin) scratch.push_back(f);
        add_clause(scratch);
        ++stats_.inprocess_clauses;
      }
    }
  }
  if (!ok_) return;

  constexpr std::uint32_t kNoGate = 0xffffffffu;
  std::vector<std::uint32_t> def(num_vars(), kNoGate);
  std::vector<std::uint32_t> fanout(num_vars(), 0);
  for (std::uint32_t i = 0; i < gates.size(); ++i) {
    if (gates[i].out < num_vars()) def[gates[i].out] = i;
  }
  for (const GateDef& g : gates) {
    for (const Lit l : g.fanin) {
      if (l.var() < num_vars()) ++fanout[l.var()];
    }
  }

  const std::size_t cap = gates.size() * 2 + 64;
  std::size_t added = 0;
  auto emit = [&](Lit a, Lit b) {
    if (added >= cap || !ok_) return;
    const Lit clause[2] = {a, b};
    add_clause(clause);
    ++added;
    ++stats_.inprocess_clauses;
  };

  // Equivalent-gate merging: two gates with the same kind, threshold and
  // fanin define the same function; link their outputs in whichever
  // directions the emitted halves justify (g1 -> def -> g2 needs
  // g1.pos_half and g2.neg_half). A cheap order-independent signature
  // filters first so unshared DAGs (the common case) never materialise
  // sorted fanin keys — the exact comparison runs only on hash matches.
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> buckets;
  buckets.reserve(gates.size());
  for (std::uint32_t i = 0; i < gates.size(); ++i) {
    const GateDef& g = gates[i];
    std::uint64_t sig = 0x9e3779b97f4a7c15ull *
                        (static_cast<std::uint64_t>(g.kind) * 131u + g.k + 1u);
    for (const Lit l : g.fanin) {
      // Commutative mix: fanin order must not affect the signature.
      std::uint64_t h = l.index() + 0x9e3779b97f4a7c15ull;
      h ^= h >> 33;
      h *= 0xff51afd7ed558ccdull;
      h ^= h >> 33;
      sig += h;
    }
    buckets[sig].push_back(i);
  }
  std::vector<Lit> key_a, key_b;
  for (const auto& [sig, members] : buckets) {
    if (members.size() < 2) continue;
    const GateDef& first = gates[members.front()];
    key_a.assign(first.fanin.begin(), first.fanin.end());
    std::sort(key_a.begin(), key_a.end());
    for (std::size_t mi = 1; mi < members.size(); ++mi) {
      const GateDef& g = gates[members[mi]];
      if (g.kind != first.kind || g.k != first.k ||
          g.fanin.size() != first.fanin.size()) {
        continue;
      }
      key_b.assign(g.fanin.begin(), g.fanin.end());
      std::sort(key_b.begin(), key_b.end());
      if (key_a != key_b) continue;
      if (first.pos_half && g.neg_half) {
        emit(Lit::neg(first.out), Lit::pos(g.out));
      }
      if (g.pos_half && first.neg_half) {
        emit(Lit::neg(g.out), Lit::pos(first.out));
      }
    }
  }

  // Single-fanout chain collapse: an intermediate AND/OR gate h used by
  // exactly one parent contributes a two-step implication chain the
  // search would otherwise rediscover one propagation at a time. The
  // shortcut needs both steps to exist as emitted binaries:
  //   And parent G (pos half):  G -> l, and l -> f per fanin f of h.
  //   Or parent G (neg half):   l -> G, and f -> l per fanin f of h.
  for (const GateDef& g : gates) {
    if (g.kind == GateDef::Kind::Card) continue;
    const bool and_parent = g.kind == GateDef::Kind::And;
    if (and_parent ? !g.pos_half : !g.neg_half) continue;
    for (const Lit l : g.fanin) {
      const Var hv = l.var();
      if (hv >= num_vars() || def[hv] == kNoGate || fanout[hv] != 1) continue;
      const GateDef& h = gates[def[hv]];
      if (h.kind == GateDef::Kind::Card) continue;
      const Lit G = Lit::pos(g.out);
      if (and_parent) {
        if (!l.negated() && h.kind == GateDef::Kind::And && h.pos_half) {
          // G -> h and h -> f: shortcut G -> f.
          for (const Lit f : h.fanin) emit(~G, f);
        } else if (l.negated() && h.kind == GateDef::Kind::Or && h.neg_half) {
          // G -> ~h and f -> h (i.e. ~h -> ~f): shortcut G -> ~f.
          for (const Lit f : h.fanin) emit(~G, ~f);
        }
      } else {
        if (!l.negated() && h.kind == GateDef::Kind::Or && h.neg_half) {
          // f -> h and h -> G: shortcut f -> G.
          for (const Lit f : h.fanin) emit(~f, G);
        } else if (l.negated() && h.kind == GateDef::Kind::And && h.pos_half) {
          // h -> f (i.e. ~f -> ~h) and ~h -> G: shortcut ~f -> G.
          for (const Lit f : h.fanin) emit(f, G);
        }
      }
    }
  }
}

namespace {
std::atomic<std::uint64_t> g_solve_calls{0};
std::atomic<std::uint64_t> g_decisions{0};
std::atomic<std::uint64_t> g_propagations{0};
std::atomic<std::uint64_t> g_conflicts{0};
std::atomic<std::uint64_t> g_binary_propagations{0};
}  // namespace

std::uint64_t Solver::global_solve_calls() noexcept {
  return g_solve_calls.load(std::memory_order_relaxed);
}

GlobalSatCounters Solver::global_counters() noexcept {
  GlobalSatCounters c;
  c.solves = g_solve_calls.load(std::memory_order_relaxed);
  c.decisions = g_decisions.load(std::memory_order_relaxed);
  c.propagations = g_propagations.load(std::memory_order_relaxed);
  c.conflicts = g_conflicts.load(std::memory_order_relaxed);
  c.binary_propagations =
      g_binary_propagations.load(std::memory_order_relaxed);
  return c;
}

SolveResult Solver::solve(std::span<const Lit> assumptions) {
  g_solve_calls.fetch_add(1, std::memory_order_relaxed);
  // Per-call effort deltas drain into the process-wide aggregates on
  // every exit path.
  struct Tally {
    Solver* s;
    SolverStats base;
    ~Tally() {
      const SolverStats& now = s->stats_;
      g_decisions.fetch_add(now.decisions - base.decisions,
                            std::memory_order_relaxed);
      g_propagations.fetch_add(now.propagations - base.propagations,
                               std::memory_order_relaxed);
      g_conflicts.fetch_add(now.conflicts - base.conflicts,
                            std::memory_order_relaxed);
      g_binary_propagations.fetch_add(
          now.binary_propagations - base.binary_propagations,
          std::memory_order_relaxed);
    }
  } tally{this, stats_};
  // Wedge site for watchdog tests: sits BEFORE the liveness tick so an
  // armed delay is a genuine progress-free stall, exactly what a hung
  // solve looks like from the engine's side.
  FTA_FAILPOINT("sat.solve");
  // Conflict-free solves (common in core-guided inner loops) must still
  // register as liveness, or a fast-churning session looks wedged.
  if (cancel_) cancel_->note_progress();
  if (!ok_) {
    core_.clear();
    return SolveResult::Unsat;
  }
  assumptions_.assign(assumptions.begin(), assumptions.end());
  for (Lit a : assumptions_) ensure_vars(a.var() + 1);
  core_.clear();

  if (learnt_cap_ == 0) learnt_cap_ = opts_.initial_learnt_cap;
  std::uint64_t restart_count = 0;
  std::uint64_t conflicts_until_restart =
      opts_.restart_base * util::luby(++restart_count);
  std::uint64_t conflicts_at_start = stats_.conflicts;
  std::vector<Lit> learnt;

  while (true) {
    const ClauseRef conflict = propagate();
    if (conflict != kNoClause) {
      ++stats_.conflicts;
      // One liveness tick per conflict: the engine watchdog distinguishes
      // a hard instance (conflicts keep flowing) from a wedged solve.
      if (cancel_) cancel_->note_progress();
      if (decision_level() == 0) {
        ok_ = false;
        backtrack(0);
        return SolveResult::Unsat;  // UNSAT regardless of assumptions
      }
      std::uint32_t bt_level = 0;
      std::uint32_t lbd = 0;
      analyze(conflict, learnt, bt_level, lbd);
      // Never undo the assumption prefix wholesale: conflicts below the
      // assumption levels are handled when re-deciding assumptions.
      backtrack(bt_level);
      if (learnt.size() == 1) {
        if (value(learnt[0]) == LBool::Undef) {
          enqueue(learnt[0], kNoClause);
        } else if (value(learnt[0]) == LBool::False) {
          ok_ = false;
          backtrack(0);
          return SolveResult::Unsat;
        }
      } else {
        const ClauseRef cref = arena_.alloc(learnt, /*learnt=*/true);
        arena_.view(cref).set_lbd(lbd);
        learnt_clauses_.push_back(cref);
        ++stats_.learnt_clauses;
        attach(cref);
        enqueue(learnt[0], cref);
      }
      decay_var_activity();
      if (--conflicts_until_restart == 0) {
        ++stats_.restarts;
        conflicts_until_restart = opts_.restart_base * util::luby(++restart_count);
        backtrack(0);
      }
      continue;
    }

    // No conflict: bookkeeping, then decide.
    if (cancelled() ||
        (opts_.conflict_budget != 0 &&
         stats_.conflicts - conflicts_at_start >= opts_.conflict_budget)) {
      backtrack(0);
      return SolveResult::Unknown;
    }
    if (learnt_clauses_.size() >= learnt_cap_) {
      reduce_db();
      learnt_cap_ = static_cast<std::uint32_t>(
          static_cast<double>(learnt_cap_) * opts_.learnt_growth);
    }

    Lit decision = logic::kNoLit;
    while (decision_level() < assumptions_.size()) {
      const Lit a = assumptions_[decision_level()];
      if (value(a) == LBool::True) {
        // Already implied: open a dummy level to keep indexing aligned.
        trail_lim_.push_back(static_cast<std::uint32_t>(trail_.size()));
      } else if (value(a) == LBool::False) {
        analyze_final(~a);
        backtrack(0);
        return SolveResult::Unsat;
      } else {
        decision = a;
        break;
      }
    }
    if (decision == logic::kNoLit) decision = pick_branch();
    if (decision == logic::kNoLit) {
      // Complete assignment: record the model.
      model_.assign(num_vars(), false);
      for (Var v = 0; v < num_vars(); ++v) {
        model_[v] = value(v) == LBool::True   ? true
                    : value(v) == LBool::False ? false
                                               : polarity_[v];
      }
      backtrack(0);
      return SolveResult::Sat;
    }
    ++stats_.decisions;
    trail_lim_.push_back(static_cast<std::uint32_t>(trail_.size()));
    enqueue(decision, kNoClause);
  }
}

}  // namespace fta::sat
