// Contiguous clause storage for the CDCL solver.
//
// Clauses live in one flat uint32_t buffer and are addressed by ClauseRef
// (an offset), the classic MiniSat layout: a small header (size, learnt
// flag, activity/LBD for learnt clauses) followed by the literals. This
// keeps propagation cache-friendly and makes garbage collection a simple
// compacting copy.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "logic/lit.hpp"

namespace fta::sat {

using logic::Lit;
using logic::Var;

using ClauseRef = std::uint32_t;
inline constexpr ClauseRef kNoClause = 0xffffffffu;

/// View over a clause stored in the arena. Invalidated by garbage
/// collection; never hold across reduce_db().
class ClauseView {
 public:
  ClauseView(std::uint32_t* base) noexcept : base_(base) {}

  std::uint32_t size() const noexcept { return base_[0] >> 2; }
  bool learnt() const noexcept { return (base_[0] & 1u) != 0; }
  bool deleted() const noexcept { return (base_[0] & 2u) != 0; }
  void mark_deleted() noexcept { base_[0] |= 2u; }

  /// LBD ("glue") of a learnt clause; meaningless for problem clauses.
  std::uint32_t lbd() const noexcept { return base_[1]; }
  void set_lbd(std::uint32_t v) noexcept { base_[1] = v; }

  Lit operator[](std::uint32_t i) const noexcept {
    return Lit::from_index(base_[2 + i]);
  }
  void set(std::uint32_t i, Lit l) noexcept { base_[2 + i] = l.index(); }

  void shrink(std::uint32_t new_size) noexcept {
    base_[0] = (new_size << 2) | (base_[0] & 3u);
  }

  std::span<const std::uint32_t> raw_lits() const noexcept {
    return {base_ + 2, size()};
  }

 private:
  std::uint32_t* base_;
};

class ClauseArena {
 public:
  /// Allocates a clause; returns its reference.
  ClauseRef alloc(std::span<const Lit> lits, bool learnt);

  ClauseView view(ClauseRef ref) noexcept { return ClauseView(&buf_[ref]); }
  const std::uint32_t* data(ClauseRef ref) const noexcept { return &buf_[ref]; }

  std::size_t wasted() const noexcept { return wasted_; }
  std::size_t size() const noexcept { return buf_.size(); }

  void note_deleted(ClauseRef ref) noexcept {
    wasted_ += 2 + ClauseView(&buf_[ref]).size();
  }

  /// Compacts the arena, dropping deleted clauses. `relocate` is invoked
  /// as relocate(old_ref, new_ref) for every surviving clause so the
  /// solver can patch watch lists and reason references.
  template <typename Fn>
  void collect(Fn&& relocate) {
    std::vector<std::uint32_t> fresh;
    fresh.reserve(buf_.size() - wasted_);
    std::size_t i = 0;
    while (i < buf_.size()) {
      ClauseView c(&buf_[i]);
      const std::size_t len = 2 + c.size();
      if (!c.deleted()) {
        const auto new_ref = static_cast<ClauseRef>(fresh.size());
        fresh.insert(fresh.end(), buf_.begin() + static_cast<std::ptrdiff_t>(i),
                     buf_.begin() + static_cast<std::ptrdiff_t>(i + len));
        relocate(static_cast<ClauseRef>(i), new_ref);
      }
      i += len;
    }
    buf_ = std::move(fresh);
    wasted_ = 0;
  }

 private:
  std::vector<std::uint32_t> buf_;
  std::size_t wasted_ = 0;
};

}  // namespace fta::sat
