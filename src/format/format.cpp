#include "format/format.hpp"

#include <cctype>
#include <cstdio>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "format/galileo.hpp"
#include "ft/openpsa.hpp"
#include "ft/parser.hpp"
#include "ft/xml.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace fta::format {

namespace {

/// Maps a byte offset into 1-based (line, column) for JSON diagnostics.
std::pair<std::size_t, std::size_t> offset_position(const std::string& text,
                                                    std::size_t offset) {
  std::size_t line = 1, column = 1;
  const std::size_t end = offset < text.size() ? offset : text.size();
  for (std::size_t i = 0; i < end; ++i) {
    if (text[i] == '\n') {
      ++line;
      column = 1;
    } else {
      ++column;
    }
  }
  return {line, column};
}

std::string lower_ext(const std::string& filename) {
  const std::size_t dot = filename.find_last_of('.');
  if (dot == std::string::npos) return "";
  return util::to_lower(filename.substr(dot));
}

[[noreturn]] void fail_json(std::size_t line, std::size_t column,
                            const std::string& detail) {
  throw ParseError(TreeFormat::Json, line, column, detail);
}

/// Parses the ft::to_json tree document shape.
ft::FaultTree parse_json_tree_impl(const std::string& text) {
  util::JsonValue doc = util::JsonValue::make_null();
  try {
    doc = util::JsonValue::parse(text);
  } catch (const util::JsonError& e) {
    const auto [line, column] = offset_position(text, e.offset());
    fail_json(line, column, e.what());
  }
  if (!doc.is_object()) {
    fail_json(1, 1, "tree document must be a JSON object");
  }
  const std::string top_name = doc.get_string("top", "");
  if (top_name.empty()) {
    fail_json(1, 1, "missing required member \"top\"");
  }
  const util::JsonValue* nodes = doc.find("nodes");
  if (nodes == nullptr || !nodes->is_array()) {
    fail_json(1, 1, "missing required array \"nodes\"");
  }

  struct GateDecl {
    ft::NodeType type = ft::NodeType::Or;
    std::uint32_t k = 0;
    std::vector<std::string> children;
  };
  // Events inserted in nodes-array order => deterministic EventIndex.
  std::vector<std::pair<std::string, double>> events;
  std::vector<std::string> gate_order;
  std::unordered_map<std::string, GateDecl> gates;
  std::unordered_set<std::string> names;

  for (const util::JsonValue& node : nodes->items()) {
    if (!node.is_object()) {
      fail_json(1, 1, "every entry of \"nodes\" must be an object");
    }
    const std::string id = node.get_string("id", "");
    if (id.empty()) fail_json(1, 1, "node without an \"id\"");
    if (!names.insert(id).second) {
      fail_json(1, 1, "duplicate node id '" + id + "'");
    }
    const std::string type = node.get_string("type", "");
    if (type == "event" || type == "basic-event" || type == "basic") {
      events.emplace_back(id, node.get_number("prob", 0.0));
      continue;
    }
    GateDecl g;
    if (type == "and") {
      g.type = ft::NodeType::And;
    } else if (type == "or") {
      g.type = ft::NodeType::Or;
    } else if (type == "vote" || type == "atleast") {
      g.type = ft::NodeType::Vote;
      const double k = node.get_number("k", 0.0);
      if (!(k >= 1.0) || k != static_cast<double>(
                                  static_cast<std::uint32_t>(k))) {
        fail_json(1, 1, "gate '" + id + "': bad vote threshold \"k\"");
      }
      g.k = static_cast<std::uint32_t>(k);
    } else {
      fail_json(1, 1, "node '" + id + "': unknown type '" + type + "'");
    }
    const util::JsonValue* children = node.find("children");
    if (children == nullptr || !children->is_array()) {
      fail_json(1, 1, "gate '" + id + "' needs a \"children\" array");
    }
    for (const util::JsonValue& c : children->items()) {
      if (!c.is_string()) {
        fail_json(1, 1, "gate '" + id + "': children must be node ids");
      }
      g.children.push_back(c.as_string());
    }
    gate_order.push_back(id);
    gates.emplace(id, std::move(g));
  }

  ft::FaultTree tree;
  std::unordered_map<std::string, ft::NodeIndex> index;
  try {
    for (const auto& [name, p] : events) {
      index.emplace(name, tree.add_basic_event(name, p));
    }
    // Gates children-first with cycle detection.
    std::unordered_set<std::string> inserting;
    std::vector<std::pair<std::string, bool>> stack;
    for (auto it = gate_order.rbegin(); it != gate_order.rend(); ++it) {
      stack.push_back({*it, false});
    }
    while (!stack.empty()) {
      auto [name, expanded] = stack.back();
      stack.pop_back();
      if (index.count(name)) continue;
      const GateDecl& g = gates.at(name);
      if (expanded) {
        inserting.erase(name);
        std::vector<ft::NodeIndex> children;
        children.reserve(g.children.size());
        for (const auto& c : g.children) children.push_back(index.at(c));
        index.emplace(name,
                      g.type == ft::NodeType::Vote
                          ? tree.add_vote_gate(name, g.k, std::move(children))
                          : tree.add_gate(name, g.type, std::move(children)));
        continue;
      }
      if (!inserting.insert(name).second) {
        fail_json(1, 1, "cycle through gate '" + name + "'");
      }
      stack.push_back({name, true});
      for (const auto& c : g.children) {
        if (index.count(c)) continue;
        if (!gates.count(c)) {
          fail_json(1, 1,
                    "gate '" + name + "': undefined child '" + c + "'");
        }
        stack.push_back({c, false});
      }
    }
    const auto top = index.find(top_name);
    if (top == index.end()) {
      fail_json(1, 1, "top '" + top_name + "' is not a defined node");
    }
    tree.set_top(top->second);
    tree.validate();
  } catch (const ParseError&) {
    throw;
  } catch (const std::exception& e) {
    fail_json(1, 1, e.what());
  }
  return tree;
}

/// The typed JsonValue getters throw util::JsonError on wrong-typed
/// members; every such schema defect must still surface as ParseError.
ft::FaultTree parse_json_tree(const std::string& text) {
  try {
    return parse_json_tree_impl(text);
  } catch (const ParseError&) {
    throw;
  } catch (const util::JsonError& e) {
    fail_json(1, 1, e.what());
  }
}

ft::FaultTree parse_open_psa_checked(const std::string& text) {
  try {
    return ft::parse_open_psa(text);
  } catch (const ft::xml::XmlError& e) {
    throw ParseError(TreeFormat::OpenPsa, e.line(), e.column(), e.what());
  } catch (const ft::ParseError& e) {
    throw ParseError(TreeFormat::OpenPsa, e.line(), 0, e.what());
  } catch (const std::exception& e) {
    throw ParseError(TreeFormat::OpenPsa, 0, 0, e.what());
  }
}

}  // namespace

const char* format_name(TreeFormat f) noexcept {
  switch (f) {
    case TreeFormat::Auto: return "auto";
    case TreeFormat::Json: return "json";
    case TreeFormat::Galileo: return "galileo";
    case TreeFormat::OpenPsa: return "openpsa";
  }
  return "?";
}

bool parse_format_name(const std::string& name, TreeFormat* out) noexcept {
  const std::string n = util::to_lower(name);
  if (n == "auto") *out = TreeFormat::Auto;
  else if (n == "json") *out = TreeFormat::Json;
  else if (n == "galileo" || n == "dft" || n == "ft") *out = TreeFormat::Galileo;
  else if (n == "openpsa" || n == "open-psa" || n == "mef" || n == "opsa")
    *out = TreeFormat::OpenPsa;
  else return false;
  return true;
}

ParseError::ParseError(TreeFormat format, std::size_t line,
                       std::size_t column, const std::string& detail)
    : std::runtime_error(
          std::string(format_name(format)) + ": line " +
          std::to_string(line) + ", column " + std::to_string(column) +
          ": " + detail),
      format_(format),
      line_(line),
      column_(column),
      detail_(detail) {}

TreeFormat detect_format(const std::string& filename,
                         const std::string& content) noexcept {
  const std::string ext = lower_ext(filename);
  if (ext == ".dft" || ext == ".ft") return TreeFormat::Galileo;
  if (ext == ".xml" || ext == ".opsa" || ext == ".mef") {
    return TreeFormat::OpenPsa;
  }
  if (ext == ".json") return TreeFormat::Json;
  const std::size_t first = content.find_first_not_of(" \t\r\n");
  if (first != std::string::npos) {
    if (content[first] == '<') return TreeFormat::OpenPsa;
    if (content[first] == '{') return TreeFormat::Json;
  }
  return TreeFormat::Galileo;
}

ft::FaultTree parse_tree(const std::string& text, const ParseOptions& opts,
                         const std::string& filename) {
  TreeFormat format = opts.format;
  if (format == TreeFormat::Auto) format = detect_format(filename, text);
  switch (format) {
    case TreeFormat::Json:
      return parse_json_tree(text);
    case TreeFormat::OpenPsa:
      return parse_open_psa_checked(text);
    case TreeFormat::Galileo: {
      GalileoOptions gopts;
      gopts.mission_time = opts.mission_time;
      return parse_galileo(text, gopts);
    }
    case TreeFormat::Auto:
      break;
  }
  throw ParseError(TreeFormat::Auto, 0, 0, "unresolvable format");
}

std::string to_galileo(const ft::FaultTree& tree) {
  return write_galileo(tree);
}

std::string to_open_psa(const ft::FaultTree& tree,
                        const std::string& tree_name) {
  tree.validate();
  std::ostringstream os;
  os << "<?xml version=\"1.0\"?>\n<opsa-mef>\n";
  os << "  <define-fault-tree name=\"" << ft::xml::escape(tree_name)
     << "\">\n";
  // Top gate first (reader convention), then the rest in DFS order —
  // the ft::to_open_psa layout with round-trip float precision.
  std::vector<ft::NodeIndex> order;
  std::unordered_set<ft::NodeIndex> seen;
  std::vector<ft::NodeIndex> stack{tree.top()};
  while (!stack.empty()) {
    const ft::NodeIndex id = stack.back();
    stack.pop_back();
    if (!seen.insert(id).second) continue;
    const ft::Node& n = tree.node(id);
    if (n.type == ft::NodeType::BasicEvent) continue;
    order.push_back(id);
    for (auto it = n.children.rbegin(); it != n.children.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  for (const ft::NodeIndex id : order) {
    const ft::Node& n = tree.node(id);
    os << "    <define-gate name=\"" << ft::xml::escape(n.name) << "\">\n";
    if (n.type == ft::NodeType::Vote) {
      os << "      <atleast min=\"" << n.k << "\">\n";
    } else {
      os << "      <" << ft::node_type_name(n.type) << ">\n";
    }
    for (const ft::NodeIndex c : n.children) {
      const ft::Node& child = tree.node(c);
      const char* tag =
          child.type == ft::NodeType::BasicEvent ? "basic-event" : "gate";
      os << "        <" << tag << " name=\"" << ft::xml::escape(child.name)
         << "\"/>\n";
    }
    os << (n.type == ft::NodeType::Vote
               ? "      </atleast>\n"
               : std::string("      </") + ft::node_type_name(n.type) +
                     ">\n");
    os << "    </define-gate>\n";
  }
  os << "  </define-fault-tree>\n";
  os << "  <model-data>\n";
  for (ft::EventIndex e = 0; e < tree.num_events(); ++e) {
    const ft::Node& n = tree.event(e);
    os << "    <define-basic-event name=\"" << ft::xml::escape(n.name)
       << "\">\n      <float value=\"" << format_probability(n.probability)
       << "\"/>\n    </define-basic-event>\n";
  }
  os << "  </model-data>\n</opsa-mef>\n";
  return os.str();
}

std::string to_json(const ft::FaultTree& tree) {
  std::ostringstream os;
  os << "{\n  \"tool\": \"mpmcs4fta-cpp\",\n  \"top\": \""
     << util::json_escape(tree.node(tree.top()).name)
     << "\",\n  \"nodes\": [";
  for (ft::NodeIndex i = 0; i < tree.num_nodes(); ++i) {
    const ft::Node& n = tree.node(i);
    os << (i == 0 ? "\n" : ",\n") << "    {\"id\": \""
       << util::json_escape(n.name) << "\", \"type\": \""
       << ft::node_type_name(n.type) << '"';
    if (n.type == ft::NodeType::BasicEvent) {
      os << ", \"prob\": " << format_probability(n.probability);
    }
    if (n.type == ft::NodeType::Vote) os << ", \"k\": " << n.k;
    if (!n.children.empty()) {
      os << ", \"children\": [";
      for (std::size_t c = 0; c < n.children.size(); ++c) {
        if (c > 0) os << ", ";
        os << '"' << util::json_escape(tree.node(n.children[c]).name) << '"';
      }
      os << ']';
    }
    os << '}';
  }
  os << "\n  ]\n}\n";
  return os.str();
}

std::string serialize_tree(const ft::FaultTree& tree, TreeFormat format) {
  switch (format) {
    case TreeFormat::Json: return to_json(tree);
    case TreeFormat::Galileo: return to_galileo(tree);
    case TreeFormat::OpenPsa: return format::to_open_psa(tree);
    case TreeFormat::Auto: break;
  }
  throw std::invalid_argument("serialize_tree: format must be concrete");
}

std::string format_probability(double p) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", p);
  return buf;
}

}  // namespace fta::format
