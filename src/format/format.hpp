// Standard-format corpus ingestion: one facade over every fault-tree
// interchange format the system speaks.
//
// Formats:
//   * Galileo DFT (`.dft`, `.ft`) — the de-facto textual format of the
//     DFT benchmark collections (Galileo/FFORT/MaxSAT Evaluation 2020):
//     `toplevel "X";`, gate statements (`and`, `or`, `KofN` votes), basic
//     events with `prob=` or `lambda=` (exponential rates converted at a
//     configurable mission time). Dynamic gates (pand, spare, fdep, seq)
//     are *rejected* with a structured diagnostic naming the gate — this
//     library analyses static fault trees.
//   * Open-PSA MEF XML (`.xml`, `.opsa`, `.mef`) — the interchange subset
//     in ft/openpsa (`define-fault-tree`, `define-gate` with
//     and/or/atleast, `define-basic-event` floats).
//   * JSON (`.json`) — the tree document of ft::to_json (Fig. 2 of the
//     paper): `{"top": ..., "nodes": [{"id", "type", "prob", "k",
//     "children"}]}`.
//
// Every parse failure — syntax, schema or semantic — surfaces as
// format::ParseError carrying the format name and a 1-based line/column
// position, so batch CLIs and the HTTP layer can report structured
// diagnostics instead of opaque strings. The serializers emit
// probabilities with round-trip (17 significant digit) precision:
// serialize -> parse reproduces the tree bit-exactly
// (ft::structural_equal with probabilities).
#pragma once

#include <stdexcept>
#include <string>

#include "ft/fault_tree.hpp"

namespace fta::format {

enum class TreeFormat : std::uint8_t {
  Auto,     ///< Sniff: '<' => OpenPsa, '{' => Json, else Galileo.
  Json,     ///< ft::to_json tree document.
  Galileo,  ///< Galileo DFT text (superset of the native .ft grammar).
  OpenPsa,  ///< Open-PSA MEF XML subset.
};

const char* format_name(TreeFormat f) noexcept;

/// Parses "auto" | "json" | "galileo" | "openpsa" (case-insensitive;
/// "open-psa" accepted). Returns false on unknown names.
bool parse_format_name(const std::string& name, TreeFormat* out) noexcept;

/// Structured parse diagnostic: which format rejected the document, where
/// (1-based line/column; 0 = position unknown at that axis) and why.
/// what() renders "<format>: line L, column C: <detail>".
class ParseError : public std::runtime_error {
 public:
  ParseError(TreeFormat format, std::size_t line, std::size_t column,
             const std::string& detail);

  TreeFormat format() const noexcept { return format_; }
  std::size_t line() const noexcept { return line_; }
  std::size_t column() const noexcept { return column_; }
  const std::string& detail() const noexcept { return detail_; }

 private:
  TreeFormat format_;
  std::size_t line_;
  std::size_t column_;
  std::string detail_;
};

struct ParseOptions {
  TreeFormat format = TreeFormat::Auto;
  /// Mission time horizon for Galileo `lambda=` rates:
  /// p = 1 - exp(-lambda * mission_time).
  double mission_time = 1.0;
};

/// Format from the filename extension (.dft/.ft => Galileo, .xml/.opsa/
/// .mef => OpenPsa, .json => Json), falling back to content sniffing:
/// a document starting with '<' is Open-PSA, with '{' JSON, else Galileo.
TreeFormat detect_format(const std::string& filename,
                         const std::string& content) noexcept;

/// Parses `text` into a validated fault tree. With Auto, the format is
/// detected from `filename` (may be empty) and the content. Every
/// failure throws format::ParseError — no other exception type escapes.
ft::FaultTree parse_tree(const std::string& text,
                         const ParseOptions& opts = {},
                         const std::string& filename = "");

// --- serializers (round-trip precision) ---------------------------------

/// Canonical Galileo DFT: quoted names, gates top-down, `prob=` with
/// 17-significant-digit probabilities. parse_tree(to_galileo(t)) is
/// structurally identical to t including probabilities.
std::string to_galileo(const ft::FaultTree& tree);

/// Open-PSA MEF with round-trip float precision (the ft::to_open_psa
/// layout, exact probabilities).
std::string to_open_psa(const ft::FaultTree& tree,
                        const std::string& tree_name = "fault-tree");

/// The ft::to_json tree document (no solution block).
std::string to_json(const ft::FaultTree& tree);

/// Serialize in any concrete format (Auto is rejected).
std::string serialize_tree(const ft::FaultTree& tree, TreeFormat format);

/// Formats a double with enough digits to round-trip bit-exactly.
std::string format_probability(double p);

}  // namespace fta::format
