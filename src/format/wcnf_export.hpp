// WDIMACS/WCNF export of the paper's Step 1-4 encoding: hard clauses
// assert the fault formula (Tseitin CNF of the tree), every basic event
// carries a unit soft clause ¬x_i weighted round(-log p_i * scale). The
// header comments record the event-variable map (`c event <dimacs-var>
// <name> <prob> <weight>`) so third-party MaxSAT solvers' models can be
// decoded back to cut sets; maxsat::read_wcnf skips them, making export →
// re-import → re-solve an identity on optimum cost.
#pragma once

#include <string>

#include "core/pipeline.hpp"
#include "ft/fault_tree.hpp"

namespace fta::format {

/// Serializes the Steps 1-4 Weighted Partial MaxSAT instance of a
/// validated tree. `opts` controls the encoding exactly like the solving
/// pipeline (weight_scale, cardinality lowering, ...).
std::string export_wcnf(const ft::FaultTree& tree,
                        const core::PipelineOptions& opts = {});

/// Same, reusing an existing pipeline's configuration.
std::string export_wcnf(const ft::FaultTree& tree,
                        const core::MpmcsPipeline& pipeline);

}  // namespace fta::format
