#include "format/galileo.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "format/format.hpp"
#include "util/strings.hpp"

namespace fta::format {

namespace {

[[noreturn]] void fail(std::size_t line, std::size_t column,
                       const std::string& detail) {
  throw ParseError(TreeFormat::Galileo, line, column, detail);
}

struct Token {
  std::string text;
  std::size_t line = 0;
  std::size_t column = 0;  // 1-based column of the first character
  bool quoted = false;
};

struct Statement {
  std::vector<Token> tokens;
};

/// Splits the document into ';'-terminated statements. Tracks line and
/// column per token; supports '//', '#' and '/* */' comments and
/// double-quoted names.
std::vector<Statement> tokenize(const std::string& text) {
  std::vector<Statement> statements;
  Statement current;
  std::size_t line = 1, column = 1;
  std::size_t i = 0;
  const std::size_t n = text.size();
  auto advance = [&](std::size_t count = 1) {
    for (std::size_t j = 0; j < count && i < n; ++j, ++i) {
      if (text[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
  };
  while (i < n) {
    const char c = text[i];
    if (c == '\n' || std::isspace(static_cast<unsigned char>(c))) {
      advance();
      continue;
    }
    if (c == '#' || (c == '/' && i + 1 < n && text[i + 1] == '/')) {
      while (i < n && text[i] != '\n') advance();
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      const std::size_t start_line = line, start_col = column;
      advance(2);
      while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) advance();
      if (i + 1 >= n) fail(start_line, start_col, "unterminated /* comment");
      advance(2);
      continue;
    }
    if (c == ';') {
      if (!current.tokens.empty()) {
        statements.push_back(std::move(current));
        current = {};
      }
      advance();
      continue;
    }
    if (c == '"') {
      Token t;
      t.line = line;
      t.column = column;
      t.quoted = true;
      advance();  // opening quote
      while (i < n && text[i] != '"' && text[i] != '\n') {
        t.text += text[i];
        advance();
      }
      if (i >= n || text[i] != '"') {
        fail(t.line, t.column, "unterminated quoted name");
      }
      advance();  // closing quote
      current.tokens.push_back(std::move(t));
      continue;
    }
    Token t;
    t.line = line;
    t.column = column;
    while (i < n) {
      const char d = text[i];
      if (std::isspace(static_cast<unsigned char>(d)) || d == ';' ||
          d == '"') {
        break;
      }
      if (d == '/' && i + 1 < n && (text[i + 1] == '/' || text[i + 1] == '*'))
        break;
      t.text += d;
      advance();
    }
    current.tokens.push_back(std::move(t));
  }
  if (!current.tokens.empty()) {
    const Token& first = current.tokens.front();
    fail(first.line, first.column, "statement not terminated by ';'");
  }
  return statements;
}

/// "KofN" / "K/N" vote operators; returns (k, n).
std::optional<std::pair<std::uint32_t, std::uint32_t>> parse_kofn(
    const std::string& token) {
  std::size_t pos = token.find("of");
  std::size_t skip = 2;
  if (pos == std::string::npos) {
    pos = token.find('/');
    skip = 1;
  }
  if (pos == std::string::npos || pos == 0 || pos + skip >= token.size()) {
    return std::nullopt;
  }
  std::uint64_t k = 0, n = 0;
  for (std::size_t i = 0; i < pos; ++i) {
    if (!std::isdigit(static_cast<unsigned char>(token[i]))) {
      return std::nullopt;
    }
    k = k * 10 + static_cast<std::uint64_t>(token[i] - '0');
    if (k > 0xffffffffull) return std::nullopt;
  }
  for (std::size_t i = pos + skip; i < token.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(token[i]))) {
      return std::nullopt;
    }
    n = n * 10 + static_cast<std::uint64_t>(token[i] - '0');
    if (n > 0xffffffffull) return std::nullopt;
  }
  return std::make_pair(static_cast<std::uint32_t>(k),
                        static_cast<std::uint32_t>(n));
}

/// The dynamic-gate vocabulary of full Galileo; each is rejected with a
/// diagnostic naming the operator (static analysis only).
bool is_dynamic_gate(const std::string& op) {
  static const std::unordered_set<std::string> kDynamic = {
      "pand", "por", "seq",  "fdep", "spare",
      "wsp",  "csp", "hsp",  "pdep"};
  return kDynamic.count(op) > 0;
}

struct GateDecl {
  std::size_t line = 0;
  std::size_t column = 0;
  ft::NodeType type = ft::NodeType::Or;
  std::uint32_t k = 0;
  std::vector<std::string> children;
};

struct EventDecl {
  std::size_t line = 0;
  std::size_t column = 0;
  double probability = 0.0;
};

double parse_number(const Token& where, const std::string& value) {
  try {
    std::size_t used = 0;
    const double v = std::stod(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    fail(where.line, where.column, "bad numeric value '" + value + "'");
  }
}

}  // namespace

ft::FaultTree parse_galileo(const std::string& text,
                            const GalileoOptions& opts) {
  const auto statements = tokenize(text);

  std::string top_name;
  std::size_t top_line = 0, top_column = 0;
  // Insertion (and thus EventIndex) order follows first appearance.
  std::vector<std::string> appearance;
  std::unordered_set<std::string> seen;
  auto note = [&](const std::string& name) {
    if (seen.insert(name).second) appearance.push_back(name);
  };

  std::unordered_map<std::string, GateDecl> gates;
  std::unordered_map<std::string, EventDecl> events;

  for (const auto& st : statements) {
    const auto& t = st.tokens;
    const Token& head = t.front();
    if (!head.quoted && head.text == "toplevel") {
      if (t.size() != 2) {
        fail(head.line, head.column, "toplevel expects exactly one name");
      }
      if (!top_name.empty()) {
        fail(head.line, head.column, "duplicate toplevel statement");
      }
      top_name = t[1].text;
      top_line = head.line;
      top_column = head.column;
      note(top_name);
      continue;
    }
    if (head.text.empty()) {
      fail(head.line, head.column, "empty name");
    }
    // Basic-event statement: every remaining token is key=value.
    if (t.size() >= 2 && !t[1].quoted &&
        t[1].text.find('=') != std::string::npos) {
      EventDecl decl;
      decl.line = head.line;
      decl.column = head.column;
      bool have_value = false;
      for (std::size_t a = 1; a < t.size(); ++a) {
        const Token& attr = t[a];
        const std::size_t eq = attr.text.find('=');
        if (attr.quoted || eq == std::string::npos) {
          fail(attr.line, attr.column,
               "expected key=value attribute, got '" + attr.text + "'");
        }
        const std::string key = util::to_lower(attr.text.substr(0, eq));
        const std::string value = attr.text.substr(eq + 1);
        if (key == "prob") {
          decl.probability = parse_number(attr, value);
          have_value = true;
        } else if (key == "lambda") {
          const double rate = parse_number(attr, value);
          if (rate < 0.0) {
            fail(attr.line, attr.column, "lambda must be >= 0");
          }
          decl.probability = 1.0 - std::exp(-rate * opts.mission_time);
          have_value = true;
        } else if (key == "dorm" || key == "cov" || key == "res" ||
                   key == "mean" || key == "stddev" || key == "shape" ||
                   key == "rate" || key == "scale") {
          // Distribution shape parameters of the full Galileo grammar;
          // meaningless for a static point-probability analysis.
          (void)parse_number(attr, value);
        } else if (key == "repl") {
          const double repl = parse_number(attr, value);
          if (repl != 1.0) {
            fail(attr.line, attr.column,
                 "replicated basic events (repl=" + value +
                     ") are not supported; expand replicas explicitly");
          }
        } else {
          fail(attr.line, attr.column,
               "unknown basic-event attribute '" + key + "'");
        }
      }
      if (!have_value) {
        fail(head.line, head.column,
             "basic event '" + head.text +
                 "' needs prob= or lambda=");
      }
      if (!events.emplace(head.text, decl).second) {
        fail(head.line, head.column,
             "duplicate definition of basic event '" + head.text + "'");
      }
      note(head.text);
      continue;
    }
    // Gate statement: NAME OP child child ...
    if (t.size() >= 3) {
      const Token& op_tok = t[1];
      const std::string op = util::to_lower(op_tok.text);
      GateDecl g;
      g.line = head.line;
      g.column = head.column;
      if (!op_tok.quoted && op == "and") {
        g.type = ft::NodeType::And;
      } else if (!op_tok.quoted && op == "or") {
        g.type = ft::NodeType::Or;
      } else if (!op_tok.quoted && is_dynamic_gate(op)) {
        fail(op_tok.line, op_tok.column,
             "dynamic gate '" + op +
                 "' is not supported: this analysis covers static fault "
                 "trees (and/or/k-of-n); model the static envelope or drop "
                 "the temporal ordering");
      } else if (auto kofn = !op_tok.quoted ? parse_kofn(op) : std::nullopt) {
        g.type = ft::NodeType::Vote;
        g.k = kofn->first;
        if (kofn->second != t.size() - 2) {
          fail(op_tok.line, op_tok.column,
               "gate '" + head.text + "': " + op_tok.text + " declares " +
                   std::to_string(kofn->second) + " inputs but " +
                   std::to_string(t.size() - 2) + " children follow");
        }
      } else {
        fail(op_tok.line, op_tok.column,
             "unknown gate operator '" + op_tok.text + "'");
      }
      for (std::size_t c = 2; c < t.size(); ++c) {
        g.children.push_back(t[c].text);
      }
      note(head.text);
      for (const auto& c : g.children) note(c);
      if (!gates.emplace(head.text, std::move(g)).second) {
        fail(head.line, head.column,
             "duplicate gate definition '" + head.text + "'");
      }
      continue;
    }
    if (!head.quoted && is_dynamic_gate(util::to_lower(head.text))) {
      fail(head.line, head.column,
           "dynamic gate statement '" + head.text + "' is not supported");
    }
    fail(head.line, head.column,
         "unrecognised statement starting with '" + head.text + "'");
  }

  if (top_name.empty()) fail(1, 1, "missing toplevel statement");
  if (!gates.count(top_name) && !events.count(top_name)) {
    fail(top_line, top_column,
         "toplevel '" + top_name + "' is never defined");
  }
  for (const auto& [name, decl] : events) {
    if (gates.count(name)) {
      fail(decl.line, decl.column,
           "'" + name + "' is declared both as a gate and a basic event");
    }
  }

  // Names that are referenced but never defined as gates become basic
  // events (probability 0 unless declared).
  ft::FaultTree tree;
  std::unordered_map<std::string, ft::NodeIndex> index;
  for (const auto& name : appearance) {
    if (gates.count(name)) continue;
    const auto decl = events.find(name);
    const double p = decl == events.end() ? 0.0 : decl->second.probability;
    try {
      index.emplace(name, tree.add_basic_event(name, p));
    } catch (const ft::ValidationError& e) {
      const auto pos = decl == events.end()
                           ? std::make_pair<std::size_t, std::size_t>(1, 1)
                           : std::make_pair(decl->second.line,
                                            decl->second.column);
      fail(pos.first, pos.second, e.what());
    }
  }

  // Insert gates children-first (iterative DFS with cycle detection).
  std::unordered_set<std::string> inserting;
  std::vector<std::pair<std::string, bool>> stack{{top_name, false}};
  for (const auto& [name, g] : gates) {
    (void)g;
    stack.push_back({name, false});
  }
  while (!stack.empty()) {
    auto [name, expanded] = stack.back();
    stack.pop_back();
    if (index.count(name)) continue;
    const auto git = gates.find(name);
    if (git == gates.end()) continue;
    const GateDecl& g = git->second;
    if (expanded) {
      inserting.erase(name);
      std::vector<ft::NodeIndex> children;
      children.reserve(g.children.size());
      for (const auto& c : g.children) children.push_back(index.at(c));
      try {
        if (g.type == ft::NodeType::Vote) {
          index.emplace(name,
                        tree.add_vote_gate(name, g.k, std::move(children)));
        } else {
          index.emplace(name, tree.add_gate(name, g.type,
                                            std::move(children)));
        }
      } catch (const ft::ValidationError& e) {
        fail(g.line, g.column, e.what());
      }
      continue;
    }
    if (!inserting.insert(name).second) {
      fail(g.line, g.column, "cycle through gate '" + name + "'");
    }
    stack.push_back({name, true});
    for (const auto& c : g.children) {
      if (!index.count(c)) stack.push_back({c, false});
    }
  }

  tree.set_top(index.at(top_name));
  try {
    tree.validate();
  } catch (const ft::ValidationError& e) {
    fail(top_line == 0 ? 1 : top_line, top_column == 0 ? 1 : top_column,
         e.what());
  }
  return tree;
}

std::string write_galileo(const ft::FaultTree& tree) {
  std::ostringstream os;
  auto quoted = [](const std::string& name) { return '"' + name + '"'; };
  os << "toplevel " << quoted(tree.node(tree.top()).name) << ";\n";
  // Basic events first, in EventIndex order: the parser assigns indices
  // by first appearance, so this keeps EventIndex stable across
  // serialize/parse round-trips.
  for (ft::EventIndex e = 0; e < tree.num_events(); ++e) {
    const ft::Node& n = tree.event(e);
    os << quoted(n.name) << " prob=" << format_probability(n.probability)
       << ";\n";
  }
  // Gates from the top downwards (stable DFS order).
  std::vector<ft::NodeIndex> stack{tree.top()};
  std::unordered_set<ft::NodeIndex> visited;
  std::vector<ft::NodeIndex> gate_order;
  while (!stack.empty()) {
    const ft::NodeIndex id = stack.back();
    stack.pop_back();
    if (!visited.insert(id).second) continue;
    const ft::Node& n = tree.node(id);
    if (n.type == ft::NodeType::BasicEvent) continue;
    gate_order.push_back(id);
    for (auto it = n.children.rbegin(); it != n.children.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  for (const ft::NodeIndex id : gate_order) {
    const ft::Node& n = tree.node(id);
    os << quoted(n.name) << ' ';
    if (n.type == ft::NodeType::Vote) {
      os << n.k << "of" << n.children.size();
    } else {
      os << ft::node_type_name(n.type);
    }
    for (const ft::NodeIndex c : n.children) {
      os << ' ' << quoted(tree.node(c).name);
    }
    os << ";\n";
  }
  return os.str();
}

}  // namespace fta::format
