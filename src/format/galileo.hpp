// Galileo DFT text format (the de-facto `.dft` format of the DFT
// benchmark collections; the MaxSAT Evaluation 2020 fault-tree set was
// derived from such instances).
//
//   toplevel "System";
//   "System" or "Subsys1" "Subsys2";
//   "Subsys1" 2of3 "m1" "m2" "m3";
//   "m1" prob=0.01;
//   "m2" lambda=0.001 dorm=0;      // rate: p = 1 - exp(-lambda * T)
//
// Grammar notes:
//   * Statements end with ';'; names may be double-quoted (required by
//     some emitters, optional here). Comments: '//', '#', '/* ... */'.
//   * Gate operators: `and`, `or`, `KofN` (also written `K/N`) voting.
//   * Basic events: `prob=P` (point probability) or `lambda=R`
//     (exponential rate, converted at the configured mission time).
//     `dorm=` is accepted and ignored (dormancy shapes dynamic-spare
//     semantics this static analysis does not model); `repl=1` is
//     accepted, `repl=N>1` rejected.
//   * Dynamic gates (`pand`, `por`, `seq`, `fdep`, `spare`, `wsp`,
//     `csp`, `hsp`, `pdep`) are rejected with a structured diagnostic
//     naming the gate and its position — the paper's encoding (and this
//     library) covers static fault trees.
//
// All diagnostics are format::ParseError with 1-based line/column.
#pragma once

#include <string>

#include "ft/fault_tree.hpp"

namespace fta::format {

struct GalileoOptions {
  /// Horizon for `lambda=` basic events: p = 1 - exp(-lambda * T).
  double mission_time = 1.0;
};

/// Parses a Galileo DFT document; the result is validated. Throws
/// format::ParseError on any defect.
ft::FaultTree parse_galileo(const std::string& text,
                            const GalileoOptions& opts = {});

/// Canonical serialization: quoted names, basic events first in
/// EventIndex order (keeps indices stable across round-trips), gates in
/// stable top-down DFS order, probabilities with round-trip precision.
std::string write_galileo(const ft::FaultTree& tree);

}  // namespace fta::format
