#include "format/wcnf_export.hpp"

#include <sstream>

#include "format/format.hpp"
#include "maxsat/instance.hpp"

namespace fta::format {

std::string export_wcnf(const ft::FaultTree& tree,
                        const core::MpmcsPipeline& pipeline) {
  tree.validate();
  const maxsat::WcnfInstance instance = pipeline.build_instance(tree);

  std::ostringstream os;
  os << "c mpmcs4fta steps 1-4 encoding (Barrere & Hankin, DSN 2020)\n";
  os << "c top \"" << tree.node(tree.top()).name << "\"\n";
  os << "c weight_scale " << format_probability(
            pipeline.options().weight_scale) << '\n';
  os << "c events " << tree.num_events() << '\n';
  // Soft weights indexed by event: variables [0, num_events) are the
  // basic events (1-based in DIMACS), the rest Tseitin auxiliaries.
  std::vector<maxsat::Weight> weight(tree.num_events(), 0);
  for (const auto& s : instance.soft()) {
    if (s.lits.size() == 1 && s.lits[0].var() < tree.num_events()) {
      weight[s.lits[0].var()] = s.weight;
    }
  }
  for (ft::EventIndex e = 0; e < tree.num_events(); ++e) {
    const ft::Node& n = tree.event(e);
    os << "c event " << e + 1 << " \"" << n.name << "\" "
       << format_probability(tree.event_probability(e)) << ' ' << weight[e]
       << '\n';
  }
  maxsat::write_wcnf(os, instance);
  return os.str();
}

std::string export_wcnf(const ft::FaultTree& tree,
                        const core::PipelineOptions& opts) {
  return export_wcnf(tree, core::MpmcsPipeline(opts));
}

}  // namespace fta::format
