// The paper's contribution: computing the Maximum Probability Minimal Cut
// Set (MPMCS) of a fault tree by reduction to Weighted Partial MaxSAT.
//
// The six steps of Barrère & Hankin (DSN 2020):
//   1. Logical transformation — success tree X(t) = ¬f(t); gate-flipped
//      form Y(t) with positive events (see FormulaStore::dualize). Solving
//      "minimise satisfied events subject to f(t)" is implemented as hard
//      clauses asserting f(t) plus unit soft clauses preferring each event
//      absent — the exact dual of maximising satisfied y_i in ¬Y(t).
//   2. CNF conversion — Tseitin transformation (logic/tseitin).
//   3. Probability transformation — w_i = -log p(x_i), scaled to integers.
//   4. Weighted Partial MaxSAT instance — hard tree CNF + soft (¬x_i, w_i).
//      Step 3.5 (extension): the WCNF preprocessor (src/preprocess)
//      simplifies the hard clauses — unit propagation, subsumption,
//      self-subsuming resolution, equivalent-literal substitution and
//      bounded variable elimination over the Tseitin auxiliaries — with
//      basic-event/soft variables frozen and a ModelReconstructor mapping
//      solver models back to the original variable space.
//   5. Parallel MaxSAT resolution — the solver portfolio (maxsat/portfolio).
//   6. Reverse transformation — P = exp(-Σ w_i) over the chosen events
//      (recomputed exactly from the tree's probabilities).
//
// Extensions beyond the paper: voting-gate support end-to-end, a
// minimality shrink pass (required when events have p = 1, i.e. zero
// weight), and top-k MPMCS enumeration via superset-blocking clauses.
#pragma once

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "ft/cut_set.hpp"
#include "ft/fault_tree.hpp"
#include "ft/json_writer.hpp"
#include "ft/tree_delta.hpp"
#include "logic/tseitin.hpp"
#include "maxsat/incremental.hpp"
#include "maxsat/instance.hpp"
#include "maxsat/solver.hpp"
#include "maxsat/stratified.hpp"
#include "preprocess/preprocess.hpp"
#include "util/cancel.hpp"

namespace fta::core {

enum class SolverChoice {
  Portfolio,   ///< Step 5 as published: parallel race, first finisher wins.
  Oll,
  FuMalik,
  Lsu,
  BruteForce,  ///< Exhaustive; tiny trees only (tests, sanity checks).
  /// Structure-aware stratified solving (maxsat/stratified): when the top
  /// gate's children are independent modules, each module is solved on
  /// its own prepared sub-instance (with its own incremental session) and
  /// the per-stratum optima recombine exactly; trees that do not
  /// decompose fall back to the hedged portfolio. The remedy for
  /// repeated-subsystem ("ladder") topologies, where monolithic
  /// core-guided search explodes on equal-weight cores spanning every
  /// subsystem.
  Stratified,
};

const char* solver_choice_name(SolverChoice c) noexcept;

struct PipelineOptions {
  SolverChoice solver = SolverChoice::Portfolio;
  /// Integer scaling factor applied to -log p weights (Step 3). Larger
  /// preserves more probability resolution; see bench/ablation_weight_scaling.
  double weight_scale = 1e6;
  /// Wall-clock cap for the portfolio (0 = none).
  double timeout_seconds = 0.0;
  /// Drop gratuitous members from the returned cut (only relevant when
  /// events with probability ~1 make zero-weight softs).
  bool shrink_to_minimal = true;
  /// Plaisted–Greenbaum polarity-aware Tseitin (fewer clauses).
  bool polarity_aware_tseitin = false;
  /// Step 2 vote-gate lowering: `Expand` rewrites k-of-n gates to the
  /// recursive AND/OR network, `Totalizer` encodes them as shared
  /// counting networks (logic/cardinality), `Auto` (default) picks the
  /// totalizer once n*k reaches `card_totalizer_threshold`. Totalizer
  /// blocks report their auxiliaries, so Step 3.5 freezes the counting
  /// structure by construction and the incremental OLL engine reuses it
  /// as a pre-built core structure. The CLI exposes --card-lowering.
  logic::CardinalityLowering card_lowering = logic::CardinalityLowering::Auto;
  /// Auto threshold on n*k; 10 makes every wide vote (n >= 5)
  /// cardinality-native.
  std::uint32_t card_totalizer_threshold = 10;
  /// Step 3.5: simplify the WCNF before solving (src/preprocess). Exact —
  /// every solver sees an equivalent instance and models are mapped back
  /// to the original variable space. The CLI exposes --no-preprocess.
  bool preprocess = true;
  /// Technique/effort knobs for Step 3.5 (ignored when !preprocess).
  preprocess::PreprocessOptions preprocess_opts;
  /// Keep a persistent incremental SAT session per prepared instance
  /// (maxsat/incremental): the OLL/LSU solver state — learnt clauses,
  /// totalizers, core transformations — survives successive
  /// solve_prepared calls on the same cached structure, and top-k rounds
  /// become retractable (activation-literal-guarded) blocking clauses on
  /// the live solver instead of fresh solves. Exact; the CLI exposes
  /// --no-incremental as the escape hatch.
  bool incremental = true;
  /// Per-session memory cap: above it the session's engines are dropped
  /// and lazily rebuilt (their state is a cache, not required for
  /// correctness).
  std::size_t incremental_memory_cap_bytes = std::size_t{256} << 20;
  /// Preprocessing-aware portfolio hedging: portfolio races additionally
  /// solve the *raw* Step 1-4 instance alongside the Step 3.5 simplified
  /// one (both already live in the PreparedInstance, so hedging costs no
  /// extra preparation). Preprocessing occasionally flips an instance
  /// into a harder one; with hedging the first exact answer from either
  /// artefact wins. The two extra racing threads cost ~20-25% portfolio
  /// throughput on a single core (they are near-free once cores are
  /// idle); --no-hedge is the escape hatch. Ignored when preprocessing
  /// is off or the configured solver is not a portfolio.
  bool hedge_raw = true;
  /// Structure-aware SAT core (tentpole of the gate-map work): the
  /// Tseitin gate map rides along with the instance as StructureHints and
  /// the solving layers install it — root-biased activity seeding,
  /// forced-polarity phases and the dedicated binary watch layer under
  /// `Hints`, plus gate-structural inprocessing (chain collapse /
  /// equivalent-gate merging, exact instances only) under `Full`.
  /// Incremental sessions and the oll-circ/lsu-circ portfolio members
  /// consume it; `Off` reproduces the flat-CNF pipeline bit for bit (the
  /// ablation baseline). The CLI exposes --sat-structure.
  logic::StructureMode sat_structure = logic::StructureMode::Full;
  /// Extension beyond the paper: when the top gate is an OR, solve one
  /// MaxSAT instance per child and take the probability argmax — sound
  /// because MCS(f1 | f2) ⊆ minimize(MCS(f1) ∪ MCS(f2)) and dropping
  /// events never lowers a cut's probability. Dramatic on "many
  /// independent subsystems" topologies where core-guided search is at
  /// its weakest (see bench/ablation_decomposition).
  bool decompose_top_or = false;

  /// Hedging only bites where a portfolio race exists to put the raw
  /// members in AND preprocessing produces a distinct artefact to race
  /// against. The single source of truth for that predicate — the
  /// pipeline's solve paths and the engine's memo keys must agree on it.
  bool hedging_effective() const noexcept {
    return hedge_raw && preprocess &&
           (solver == SolverChoice::Portfolio ||
            solver == SolverChoice::Stratified);
  }
};

struct MpmcsSolution {
  maxsat::MaxSatStatus status = maxsat::MaxSatStatus::Unknown;
  ft::CutSet cut;            ///< The MPMCS (valid when status == Optimal).
  double probability = 0.0;  ///< Joint probability of the cut (Step 6).
  double log_cost = 0.0;     ///< Σ -ln p over the cut.
  std::string solver_name;   ///< Which solver/portfolio member produced it.
  double solve_seconds = 0.0;   ///< MaxSAT solving time.
  double total_seconds = 0.0;   ///< Including transformation steps.
  maxsat::Weight scaled_cost = 0;  ///< Optimal cost in scaled-integer space.
  std::size_t cnf_vars = 0;     ///< Vars of the instance handed to Step 5.
  std::size_t cnf_clauses = 0;  ///< Hard clauses handed to Step 5.
  double preprocess_seconds = 0.0;  ///< Step 3.5 cost (0 when disabled).
  /// Variables removed by Step 3.5 (fixed + substituted + eliminated).
  std::size_t preprocess_removed_vars = 0;
  /// Which artefact of the PreparedInstance produced the winning model:
  /// "raw" (the Step 1-4 instance — preprocessing off, or a raw hedge
  /// member won the race), "pre" (the Step 3.5 simplified instance), or
  /// "strata" (recombined from per-module sub-solves).
  std::string lineage;
  /// Anytime answer: `status` is Unknown (budget/deadline expired before
  /// an optimality proof) but `cut` holds the best incumbent found — a
  /// valid (minimal if shrinking) cut set whose cost may exceed the
  /// optimum. The fields below bound how far off it can be.
  bool approximate = false;
  /// Certified lower bound on the *optimal* scaled-integer cost, in the
  /// same space as `scaled_cost` (Step 3.5 offset included). Invariant:
  /// scaled_lower_bound <= optimal scaled cost <= scaled_cost.
  maxsat::Weight scaled_lower_bound = 0;
  /// exp(-scaled_lower_bound / weight_scale): no cut set can be more
  /// probable than this (advisory — inherits the llround quantisation of
  /// Step 3's weights).
  double probability_upper_bound = 0.0;
  /// (scaled_cost - scaled_lower_bound) / scaled_cost, in [0, 1]; 0 when
  /// the incumbent is provably optimal in scaled space.
  double optimality_gap = 0.0;
  /// SAT effort behind the winning result (the producing member's own
  /// counters: per-solve deltas on session engines, absolutes on
  /// stateless ones). sat_binary_propagations counts implications served
  /// by the structure layer's dedicated binary watch layer — 0 whenever
  /// the winner ran without structure hints.
  std::uint64_t sat_decisions = 0;
  std::uint64_t sat_propagations = 0;
  std::uint64_t sat_conflicts = 0;
  std::uint64_t sat_binary_propagations = 0;
};

/// Memoized per-stratum optima of a stratified artefact: keyed by the
/// solve-relevant configuration (shrink/hedge flags), indexed by stratum
/// position in the plan. Shared mutable state hanging off a (possibly
/// cached) PreparedInstance, guarded by `mutex` — the same pattern as the
/// engine's solution memo, one level down. apply_delta() invalidates
/// exactly the touched strata's entries, so after a local edit the
/// untouched modules cost zero SAT calls to re-solve.
struct StratumMemo {
  std::mutex mutex;
  std::map<std::string, std::vector<std::optional<maxsat::StratumOutcome>>>
      entries;
};

/// What apply_delta()/derive_prepared() did to the artefact — the lineage
/// record the service reports as `delta_applied` and the mutation bench
/// asserts on.
struct DeltaApplication {
  /// The delta left the tree's structure (hard clauses) intact: softs
  /// were rebuilt in place and sessions rebased — zero re-encoding.
  bool weight_only = false;
  /// Fell back to a full cold prepare (the topology changed too much to
  /// patch).
  bool reprepared = false;
  /// At least one incremental session survived the edit with its SAT
  /// state (learnt clauses, totalizers, cores) intact.
  bool session_rebased = false;
  std::size_t strata_total = 0;       ///< Non-trivial strata examined.
  std::size_t strata_reused = 0;      ///< Untouched: sub-artefact shared.
  std::size_t strata_reweighted = 0;  ///< Weight-patched sub-artefacts.
  std::size_t strata_reprepared = 0;  ///< Cold re-prepared sub-artefacts.
};

/// The Step 1-4 artefacts plus the optional Step 3.5 simplification —
/// everything needed to jump straight to Step 5. Built once per tree by
/// prepare() and cached by engine::TreeCache for repeated structures.
struct PreparedInstance {
  maxsat::WcnfInstance raw;  ///< Steps 1-4 (see build_instance).
  /// Step 3.5 artefact; null when PipelineOptions::preprocess is off.
  std::shared_ptr<const preprocess::PreprocessResult> pre;
  /// Persistent incremental solving state over the instance Step 5 will
  /// see (the simplified one when preprocessing ran). Null when
  /// PipelineOptions::incremental is off or the configured solver cannot
  /// use it; shared so cached copies of this artefact share one session.
  maxsat::IncrementalSessionPtr session;
  /// Reusable minimality-shrink context (the tree formula, built once);
  /// null when the shrink pass is disabled.
  std::shared_ptr<const ft::ShrinkContext> shrink;
  /// Stratified-decomposition plan with one recursively-prepared
  /// sub-artefact per module stratum (maxsat/stratified). Only built when
  /// PipelineOptions::solver is Stratified (the engine's structural key
  /// separates those artefacts); null or !applicable means the tree does
  /// not decompose and Stratified falls back to the hedged portfolio.
  std::shared_ptr<const maxsat::StratifiedPlan> strata;
  /// Per-stratum optima memo (stratified artefacts only, else null).
  std::shared_ptr<StratumMemo> stratum_memo;
};

class MpmcsPipeline {
 public:
  explicit MpmcsPipeline(PipelineOptions opts = {});

  /// Computes the MPMCS of a validated fault tree. The cancel token, when
  /// set, is polled cooperatively by every solver layer (including the
  /// portfolio members and the SAT search loops); cancellation or an
  /// expired token deadline yields status Unknown.
  MpmcsSolution solve(const ft::FaultTree& tree,
                      util::CancelTokenPtr cancel = nullptr) const;

  /// The k most probable MCSs in descending probability order (fewer if
  /// the tree has fewer MCSs). Each round blocks the previous cut and its
  /// supersets with a hard clause and re-solves. When fewer than k sets
  /// come back, `final_status` (if non-null) tells why enumeration ended:
  /// Unsatisfiable = the tree's MCSs are exhausted, Unknown = cancelled
  /// or budget-limited, Optimal = k sets were found.
  std::vector<MpmcsSolution> top_k(const ft::FaultTree& tree, std::size_t k,
                                   util::CancelTokenPtr cancel = nullptr,
                                   maxsat::MaxSatStatus* final_status =
                                       nullptr) const;

  /// top_k starting from a previously built artefact (see prepare): the
  /// engine's structural cache hits this path, so enumeration shares the
  /// cached instance *and* its warm incremental session instead of
  /// re-running Steps 1-4 per request.
  std::vector<MpmcsSolution> top_k_prepared(
      const ft::FaultTree& tree, const PreparedInstance& prepared,
      std::size_t k, util::CancelTokenPtr cancel = nullptr,
      maxsat::MaxSatStatus* final_status = nullptr) const;

  /// Steps 1-4 plus (when enabled) the Step 3.5 preprocessing pass, as
  /// one reusable artefact. The engine's structural cache stores these.
  /// The cancel token (when set) bounds the preprocessing phase; an
  /// early stop yields a sound but less simplified artefact.
  PreparedInstance prepare(const ft::FaultTree& tree,
                           util::CancelTokenPtr cancel = nullptr) const;

  /// Like solve(), but starting from a previously built artefact (see
  /// prepare) instead of re-running the transformation steps — the
  /// engine's structural cache hits this path. `decompose_top_or` is
  /// ignored here (the prepared instance is already whole-tree).
  MpmcsSolution solve_prepared(const ft::FaultTree& tree,
                               const PreparedInstance& prepared,
                               util::CancelTokenPtr cancel = nullptr) const;

  /// Convenience overload for a bare Step 1-4 instance; preprocessing
  /// (when enabled) runs on the fly, so prefer the PreparedInstance form
  /// for repeated solves.
  MpmcsSolution solve_prepared(const ft::FaultTree& tree,
                               const maxsat::WcnfInstance& instance,
                               util::CancelTokenPtr cancel = nullptr) const;

  /// Patches `prepared` (built for the tree `delta` was applied to) into
  /// the artefact prepare(new_tree) would build, reusing everything the
  /// edit did not touch. `new_tree` must be apply_delta(old_tree, delta).
  /// Weight-only deltas rebuild the soft clauses in place and *rebase*
  /// the live incremental sessions — the SAT solver state (hard clauses,
  /// learnt clauses, totalizer networks) is weight-independent, so no
  /// re-encoding and no cold prepare happens at all. Structural deltas on
  /// stratified artefacts re-prepare only the strata whose module
  /// changed; everything else falls back to a cold prepare. The caller
  /// must own `prepared` exclusively (no cache-shared copies) because
  /// sessions are mutated in place — shared artefacts go through
  /// derive_prepared() instead.
  DeltaApplication apply_delta(const ft::FaultTree& new_tree,
                               const ft::TreeDelta& delta,
                               PreparedInstance& prepared,
                               util::CancelTokenPtr cancel = nullptr) const;

  /// Non-destructive apply_delta: returns a patched *copy* of `base`,
  /// which may be shared (an engine cache entry). Untouched sub-artefacts
  /// and contexts are shared with the base; anything reweighted gets a
  /// fresh session (the base's warm sessions are never mutated).
  PreparedInstance derive_prepared(const ft::FaultTree& new_tree,
                                   const ft::TreeDelta& delta,
                                   const PreparedInstance& base,
                                   DeltaApplication* stats = nullptr,
                                   util::CancelTokenPtr cancel = nullptr) const;

  /// Process-wide count of cold prepares (prepare_with_plan invocations,
  /// including recursive per-stratum sub-prepares). The mutation bench
  /// and tests assert on deltas of this counter: a weight-only edit adds
  /// 0, a single-module splice adds exactly that module's prepares.
  static std::uint64_t prepare_calls() noexcept;

  /// Async entry point: solve() on a detached thread, result via future.
  /// The task takes its own copy of the tree and options, so neither the
  /// tree nor this pipeline needs to outlive the call. Batch workloads
  /// should prefer engine::AnalysisEngine, which adds a work-stealing
  /// pool and the structural-hash artefact cache on top.
  std::future<MpmcsSolution> solve_async(
      ft::FaultTree tree, util::CancelTokenPtr cancel = nullptr) const;

  const PipelineOptions& options() const noexcept { return opts_; }

  // --- step artefacts (exposed for tests, benches and documentation) ----

  /// Step 3: the -log(p) weight of every basic event (unscaled).
  static std::vector<double> log_weights(const ft::FaultTree& tree);

  /// Step 1 artefacts: builds f(t) into `store` and returns the paper's
  /// gate-flipped success-tree form Y(t) (events positive, AND<->OR
  /// swapped), with ¬Y(t) ≡ f(t).
  static logic::NodeId success_tree(logic::FormulaStore& store,
                                    const ft::FaultTree& tree);

  /// Steps 1-4: the Weighted Partial MaxSAT instance for the tree.
  /// Variables [0, num_events) are the basic events; the rest are Tseitin
  /// auxiliaries.
  maxsat::WcnfInstance build_instance(const ft::FaultTree& tree) const;

  /// Fig. 2-style JSON document for a solved tree.
  static std::string to_json(const ft::FaultTree& tree,
                             const MpmcsSolution& solution);

 private:
  /// `candidates` (when non-empty) restricts which events may appear in
  /// the extracted cut — used by decomposition, where a child instance
  /// leaves foreign events unconstrained.
  MpmcsSolution solve_instance(const ft::FaultTree& tree,
                               maxsat::WcnfInstance instance,
                               const std::vector<bool>& candidates = {},
                               util::CancelTokenPtr cancel = nullptr) const;
  /// Step 5 + Step 6 over `to_solve`. When `pre` is non-null the model
  /// is mapped back through its reconstructor and costs include its
  /// offset (to_solve is then the simplified instance, possibly with
  /// extra hard clauses such as top-k blockers appended). When `session`
  /// points at an acquired session guard, Step 5 runs the incremental
  /// engines on it (racing the stateless hedges under the portfolio
  /// choice); `shrink` (when non-null) replaces the per-call
  /// shrink_to_minimal formula rebuild. `raw_working` (when non-null)
  /// enables preprocessing-aware hedging: portfolio races add members
  /// solving that raw-lineage twin of `to_solve`, and a raw win skips
  /// model reconstruction and the Step 3.5 cost offset.
  MpmcsSolution solve_simplified(
      const ft::FaultTree& tree, const maxsat::WcnfInstance& to_solve,
      const preprocess::PreprocessResult* pre,
      const std::vector<bool>& candidates, util::CancelTokenPtr cancel,
      maxsat::IncrementalSolveSession::Guard* session = nullptr,
      const ft::ShrinkContext* shrink = nullptr,
      const maxsat::WcnfInstance* raw_working = nullptr) const;
  /// Step 5 through an acquired incremental session (direct engine call
  /// for the Oll/Lsu choices, a session-augmented race for the
  /// Portfolio/Stratified choices, with raw hedge members when
  /// `raw_working` is set).
  maxsat::MaxSatResult solve_with_session(
      maxsat::IncrementalSolveSession::Guard& session,
      const maxsat::WcnfInstance& working,
      const maxsat::WcnfInstance* raw_working,
      util::CancelTokenPtr cancel) const;
  /// The stratified strategy: per-stratum sub-solves (each on its own
  /// prepared artefact) recombined exactly; see maxsat/stratified.
  /// Consults and populates the artefact's StratumMemo.
  MpmcsSolution solve_stratified(const ft::FaultTree& tree,
                                 const PreparedInstance& prepared,
                                 util::CancelTokenPtr cancel) const;
  /// Stratified top-k for OR-combined plans: the global family is the
  /// disjoint union of the stratum families, so per-stratum top-k streams
  /// merge by scaled cost.
  std::vector<MpmcsSolution> top_k_stratified(
      const ft::FaultTree& tree, const maxsat::StratifiedPlan& plan,
      std::size_t k, util::CancelTokenPtr cancel,
      maxsat::MaxSatStatus* final_status) const;
  maxsat::WcnfInstance instance_for_formula(
      const ft::FaultTree& tree, logic::FormulaStore& store,
      logic::NodeId fault, std::vector<bool>* events_used = nullptr) const;
  MpmcsSolution solve_decomposed(const ft::FaultTree& tree,
                                 util::CancelTokenPtr cancel) const;
  /// prepare() with the stratified plan already computed (one-shot
  /// stratified solves detect applicability first and must not pay
  /// plan_strata twice).
  PreparedInstance prepare_with_plan(const ft::FaultTree& tree,
                                     maxsat::StratifiedPlan plan,
                                     util::CancelTokenPtr cancel) const;
  /// The whole-tree artefacts of prepare_with_plan (raw instance, Step
  /// 3.5 pass, session, shrink context) built into `prepared`, replacing
  /// whatever was there. Shared by prepare_with_plan and the structural
  /// branch of patch_prepared.
  void build_monolithic(const ft::FaultTree& tree, bool strata_only,
                        PreparedInstance& prepared,
                        util::CancelTokenPtr cancel) const;
  /// apply_delta/derive_prepared implementation; `exclusive` says whether
  /// sessions may be rebased in place (true) or must be replaced by
  /// fresh ones (false — the base is shared with a cache).
  DeltaApplication patch_prepared(const ft::FaultTree& new_tree,
                                  const ft::TreeDelta& delta,
                                  PreparedInstance& prepared, bool exclusive,
                                  util::CancelTokenPtr cancel) const;
  /// Weight-only patch: rebuilds raw/simplified softs under the new
  /// tree's weights, rebases (or replaces) sessions, recurses into
  /// stratified sub-artefacts whose events changed.
  void reweight_prepared(const ft::FaultTree& tree,
                         PreparedInstance& prepared, bool exclusive,
                         DeltaApplication& st) const;
  maxsat::MaxSatSolverPtr make_solver() const;

  PipelineOptions opts_;
};

}  // namespace fta::core
