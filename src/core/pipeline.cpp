#include "core/pipeline.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "logic/tseitin.hpp"
#include "maxsat/brute_force.hpp"
#include "maxsat/fu_malik.hpp"
#include "maxsat/incremental.hpp"
#include "maxsat/lsu.hpp"
#include "maxsat/oll.hpp"
#include "maxsat/portfolio.hpp"
#include "maxsat/stratified.hpp"
#include "util/timer.hpp"

namespace fta::core {

using logic::Lit;

const char* solver_choice_name(SolverChoice c) noexcept {
  switch (c) {
    case SolverChoice::Portfolio: return "portfolio";
    case SolverChoice::Oll: return "oll";
    case SolverChoice::FuMalik: return "fu-malik";
    case SolverChoice::Lsu: return "lsu";
    case SolverChoice::BruteForce: return "brute-force";
    case SolverChoice::Stratified: return "stratified";
  }
  return "?";
}

MpmcsPipeline::MpmcsPipeline(PipelineOptions opts) : opts_(opts) {}

std::vector<double> MpmcsPipeline::log_weights(const ft::FaultTree& tree) {
  std::vector<double> weights(tree.num_events(), 0.0);
  for (ft::EventIndex e = 0; e < tree.num_events(); ++e) {
    const double p = tree.event_probability(e);
    weights[e] = p > 0.0 ? -std::log(p)
                         : std::numeric_limits<double>::infinity();
  }
  return weights;
}

logic::NodeId MpmcsPipeline::success_tree(logic::FormulaStore& store,
                                          const ft::FaultTree& tree) {
  return store.dualize(tree.to_formula(store));
}

namespace {

/// Cold prepares since process start (see MpmcsPipeline::prepare_calls).
std::atomic<std::uint64_t> g_prepare_calls{0};

/// The events reachable from the top gate. A superset of the events the
/// built formula mentions only in degenerate cases, and a superset is
/// harmless for reweighting: a soft on an unconstrained variable is
/// always satisfiable and never changes the optimum.
std::vector<bool> reachable_events(const ft::FaultTree& tree) {
  std::vector<bool> used(tree.num_events(), false);
  if (!tree.has_top()) return used;
  std::vector<bool> seen(tree.num_nodes(), false);
  std::vector<ft::NodeIndex> stack{tree.top()};
  while (!stack.empty()) {
    const ft::NodeIndex i = stack.back();
    stack.pop_back();
    if (seen[i]) continue;
    seen[i] = true;
    const ft::Node& n = tree.node(i);
    if (n.type == ft::NodeType::BasicEvent) {
      used[n.event_index] = true;
      continue;
    }
    for (const ft::NodeIndex c : n.children) stack.push_back(c);
  }
  return used;
}

/// Step 3 in scaled-integer form for the events in `used`: the final
/// per-event soft weight (0 = no soft clause: unused or p == 1; p == 0
/// gets the "forbidden" weight, one more than the summed ordinary
/// weights). Factored out of instance_for_formula so the mutation path
/// rebuilds weights with bit-identical rounding.
std::vector<maxsat::Weight> scaled_soft_weights(const ft::FaultTree& tree,
                                                const std::vector<bool>& used,
                                                double weight_scale) {
  const auto weights = MpmcsPipeline::log_weights(tree);
  maxsat::Weight ordinary_total = 0;
  std::vector<maxsat::Weight> scaled(tree.num_events(), 0);
  for (ft::EventIndex e = 0; e < tree.num_events(); ++e) {
    if (!used[e] || std::isinf(weights[e])) continue;
    const auto w = static_cast<maxsat::Weight>(
        std::llround(weights[e] * weight_scale));
    scaled[e] = w;
    ordinary_total += w;
  }
  const maxsat::Weight forbidden = ordinary_total + 1;
  for (ft::EventIndex e = 0; e < tree.num_events(); ++e) {
    if (used[e] && std::isinf(weights[e])) scaled[e] = forbidden;
  }
  return scaled;
}

/// Step 4's soft side: one unit soft per weighted event, preferring it
/// absent. Drops any previous softs first (the mutation path reweights
/// instances in place).
void rebuild_softs(const ft::FaultTree& tree, const std::vector<bool>& used,
                   double weight_scale, maxsat::WcnfInstance& instance) {
  instance.clear_soft();
  const auto scaled = scaled_soft_weights(tree, used, weight_scale);
  for (ft::EventIndex e = 0; e < tree.num_events(); ++e) {
    if (scaled[e] == 0) continue;  // unused, or p == 1: free to include
    instance.add_soft_unit(Lit::neg(e), scaled[e]);
  }
}

}  // namespace

maxsat::WcnfInstance MpmcsPipeline::build_instance(
    const ft::FaultTree& tree) const {
  // Step 1 (logical transformation). The paper derives the success tree
  // X(t) = ¬f(t) and its gate-flipped positive form Y(t), then maximises
  // satisfied events in ¬Y(t) = f(t). Operationally both views produce
  // the same instance: hard clauses assert the fault formula f(t); every
  // basic event gets a unit soft clause preferring its absence, so the
  // solver minimises the (weighted) set of occurring events.
  logic::FormulaStore store;
  return instance_for_formula(tree, store, tree.to_formula(store));
}

maxsat::WcnfInstance MpmcsPipeline::instance_for_formula(
    const ft::FaultTree& tree, logic::FormulaStore& store,
    logic::NodeId fault, std::vector<bool>* events_used) const {
  // Which events the (sub)formula actually mentions: softs are only
  // emitted for those, which keeps decomposed child instances small.
  std::vector<bool> used(tree.num_events(), false);
  {
    std::vector<logic::NodeId> stack{fault};
    std::unordered_map<logic::NodeId, bool> seen;
    while (!stack.empty()) {
      const logic::NodeId id = stack.back();
      stack.pop_back();
      if (seen.count(id)) continue;
      seen.emplace(id, true);
      const auto& n = store.node(id);
      if (n.kind == logic::NodeKind::Var) used[n.payload] = true;
      for (logic::NodeId c : n.children) stack.push_back(c);
    }
  }
  if (events_used) *events_used = used;

  // Reserve variable indices for every basic event (a subformula may not
  // mention all of them; Tseitin auxiliaries must start above the event
  // range so EventIndex == CNF variable stays true).
  if (tree.num_events() > 0) {
    (void)store.var(static_cast<logic::Var>(tree.num_events() - 1));
  }

  // Step 2 (CNF conversion, Tseitin; vote gates per card_lowering).
  logic::TseitinOptions topts;
  topts.polarity_aware = opts_.polarity_aware_tseitin;
  topts.card_lowering = opts_.card_lowering;
  topts.card_totalizer_threshold = opts_.card_totalizer_threshold;
  auto ts = logic::tseitin(store, fault, /*assert_root=*/true, topts);

  maxsat::WcnfInstance instance(ts.cnf.num_vars());
  instance.add_hard_cnf(ts.cnf);
  instance.set_cards(std::move(ts.cards));

  // Package the gate map as structure hints riding with the instance.
  // This raw artefact is *exact* — the hints describe precisely the
  // clauses just emitted, so structure-derived inprocessing clauses are
  // sound; Step 3.5 downgrades its copy to advisory (preprocess.cpp).
  if (opts_.sat_structure != logic::StructureMode::Off) {
    instance.set_structure(
        std::make_shared<const logic::StructureHints>(
            logic::make_structure_hints(std::move(ts.gates), ts.root,
                                        ts.num_input_vars,
                                        ts.cnf.num_vars())),
        /*exact=*/true);
  }

  // Step 3 (probabilities into log-space) + Step 4 (soft clauses).
  // Scaled-integer weights; events with p == 1 cost nothing (no soft
  // clause; the shrink pass removes gratuitous members), events with
  // p == 0 get the "forbidden" weight: worse than every possible
  // combination of ordinary events, so they are only chosen when
  // unavoidable.
  rebuild_softs(tree, used, opts_.weight_scale, instance);
  return instance;
}

namespace {

/// The structure-enabled race members: the same OLL and LSU engines with
/// the gate-map layer installed (seeding, phases, binary watch layer, and
/// — on exact instances under Full — inprocessing). They solve `raw`
/// (the Step 1-4 artefact whose hints are exact) when hedging provides
/// it, else the default working instance. Distinct seeds diversify them
/// from the flat-CNF twins; Off appends nothing, keeping the race
/// byte-identical to the legacy lineup (the ablation baseline).
void append_structure_members(std::vector<maxsat::PortfolioMember>& members,
                              logic::StructureMode mode,
                              const maxsat::WcnfInstance* raw) {
  if (mode == logic::StructureMode::Off) return;
  members.push_back({"oll-circ",
                     [mode] {
                       maxsat::OllOptions o;
                       o.sat.seed = 0xc142c017;
                       o.structure = mode;
                       return std::make_unique<maxsat::OllSolver>(o);
                     },
                     raw});
  members.push_back({"lsu-circ",
                     [mode] {
                       maxsat::LsuOptions o;
                       o.sat.seed = 0x51a7ca7e;
                       o.structure = mode;
                       return std::make_unique<maxsat::LsuSolver>(o);
                     },
                     raw});
}

}  // namespace

maxsat::MaxSatSolverPtr MpmcsPipeline::make_solver() const {
  switch (opts_.solver) {
    // Stratified falls back to the portfolio whenever the tree does not
    // decompose (or a session/hedge path is unavailable).
    case SolverChoice::Portfolio:
    case SolverChoice::Stratified: {
      auto members = maxsat::PortfolioSolver::default_members();
      append_structure_members(members, opts_.sat_structure, nullptr);
      maxsat::PortfolioOptions po;
      po.timeout_seconds = opts_.timeout_seconds;
      return std::make_unique<maxsat::PortfolioSolver>(std::move(members), po);
    }
    case SolverChoice::Oll: {
      maxsat::OllOptions o;
      o.structure = opts_.sat_structure;
      return std::make_unique<maxsat::OllSolver>(o);
    }
    case SolverChoice::FuMalik:
      return std::make_unique<maxsat::FuMalikSolver>();
    case SolverChoice::Lsu: {
      maxsat::LsuOptions o;
      o.structure = opts_.sat_structure;
      return std::make_unique<maxsat::LsuSolver>(o);
    }
    case SolverChoice::BruteForce:
      return std::make_unique<maxsat::BruteForceSolver>();
  }
  return std::make_unique<maxsat::OllSolver>();
}

namespace {

/// Step 3.5 freeze set: every basic-event variable (soft-clause
/// variables are frozen by the preprocessor automatically; a decomposed
/// child instance may not carry softs for all events, so the whole event
/// range is pinned explicitly), plus every variable of a cardinality
/// block — inputs and counting auxiliaries. Freezing the counting
/// structure by construction keeps the block layouts valid for reuse by
/// the incremental MaxSAT engine and prevents resolution from rewriting
/// totalizer networks into wide resolvents.
std::vector<bool> freeze_mask(const ft::FaultTree& tree,
                              const maxsat::WcnfInstance& instance) {
  std::vector<bool> frozen(instance.num_vars(), false);
  for (ft::EventIndex e = 0;
       e < tree.num_events() && e < instance.num_vars(); ++e) {
    frozen[e] = true;
  }
  std::vector<logic::Var> aux;
  for (const logic::CardinalityBlock& blk : instance.cards()) {
    for (const logic::Lit l : blk.inputs) frozen[l.var()] = true;
    aux.clear();
    logic::append_aux_vars(blk.layout, aux);
    for (const logic::Var v : aux) frozen[v] = true;
  }
  return frozen;
}

/// Step 3.5 technique profile for a concrete tree. Under the Expand
/// lowering, wide voting gates (k-of-n with n >= 5) become sizeable
/// AND/OR counting networks whose auxiliary variables resolution must
/// not touch: eliminating them rewrites the counting structure into wide
/// resolvents and can flip a milliseconds instance into an intractable
/// one (observed >400x on corpora dominated by 6..12-input votes), so
/// BVE is switched off when such gates make up 10% or more of the gates.
/// The default Auto lowering subsumes this guard: every wide vote
/// (n*k >= threshold covers all n >= 5) is encoded as a totalizer whose
/// variables are frozen by construction, so BVE can stay on and keep
/// simplifying the rest of the encoding.
preprocess::PreprocessOptions effective_preprocess_options(
    const ft::FaultTree& tree, const PipelineOptions& opts) {
  preprocess::PreprocessOptions pp = opts.preprocess_opts;
  if (!pp.bve) return pp;
  std::size_t gates = 0, wide_expanded_votes = 0;
  for (ft::NodeIndex i = 0; i < tree.num_nodes(); ++i) {
    const ft::Node& n = tree.node(i);
    if (n.type == ft::NodeType::BasicEvent) continue;
    ++gates;
    if (n.type != ft::NodeType::Vote || n.children.size() < 5) continue;
    // Classified with the encoder's own policy rule (pre-fold tree
    // dimensions; a gate that constant-folds away entirely leaves no
    // counting network for BVE to mangle either way).
    if (!logic::lowers_to_totalizer(opts.card_lowering,
                                    opts.card_totalizer_threshold, n.k,
                                    n.children.size())) {
      ++wide_expanded_votes;
    }
  }
  if (wide_expanded_votes * 10 >= gates && gates > 0) pp.bve = false;
  return pp;
}

/// The raw-lineage hedge members: stateless solvers racing the untouched
/// Step 1-4 instance against everyone else's simplified one. Distinct
/// seeds keep them diversified from their pre-lineage twins.
void append_raw_members(std::vector<maxsat::PortfolioMember>& members,
                        const maxsat::WcnfInstance* raw) {
  members.push_back({"oll-raw",
                     [] {
                       maxsat::OllOptions o;
                       o.sat.seed = 0xb0a710ad;
                       return std::make_unique<maxsat::OllSolver>(o);
                     },
                     raw});
  members.push_back({"lsu-raw",
                     [] {
                       maxsat::LsuOptions o;
                       o.sat.seed = 0x9a9a5eed;
                       return std::make_unique<maxsat::LsuSolver>(o);
                     },
                     raw});
}

}  // namespace

MpmcsSolution MpmcsPipeline::solve_instance(
    const ft::FaultTree& tree, maxsat::WcnfInstance instance,
    const std::vector<bool>& candidates, util::CancelTokenPtr cancel) const {
  PreparedInstance prepared;
  prepared.raw = std::move(instance);
  if (opts_.preprocess) {
    // Step 3.5: simplify before solving; blocking clauses and
    // decomposition restrictions ride along (events are frozen).
    prepared.pre = std::make_shared<preprocess::PreprocessResult>(
        preprocess::preprocess(prepared.raw, freeze_mask(tree, prepared.raw),
                               effective_preprocess_options(tree, opts_),
                               cancel));
  }
  const preprocess::PreprocessResult* pre = prepared.pre.get();
  const maxsat::WcnfInstance* raw =
      pre != nullptr && opts_.hedging_effective() ? &prepared.raw : nullptr;
  return solve_simplified(tree, pre ? pre->simplified : prepared.raw, pre,
                          candidates, std::move(cancel), nullptr, nullptr,
                          raw);
}

namespace {

/// OLL on the session with the fragmentation-latch divert to LSU. A
/// fragmentation-latched engine (hit OllOptions::core_ceiling on an
/// earlier solve of this structure) would burn the whole budget again;
/// LSU's counting encoding is immune to core fragmentation. The divert
/// lives here rather than inside solve_oll because portfolio races
/// drive the OLL and LSU engines from two threads under one guard —
/// solve_oll must never touch the LSU engine.
maxsat::MaxSatResult solve_session_oll_lsu(
    maxsat::IncrementalSolveSession::Guard& session,
    util::CancelTokenPtr cancel) {
  if (!(session.oll_fragmented() && session.lsu_useful())) {
    maxsat::MaxSatResult r = session.solve_oll(cancel);
    if (r.status != maxsat::MaxSatStatus::Unknown ||
        !(session.oll_fragmented() && session.lsu_useful())) {
      return r;
    }
  }
  return session.solve_lsu(std::move(cancel));
}

/// Below this working-instance size the hedged race is skipped on the
/// session path: spawning member threads costs ~0.2 ms, a small
/// instance's incremental re-solve finishes well inside that, and its
/// worst case is bounded by the instance itself. This is what keeps a
/// weight-only PATCH on a modest tree resource in the warm-latency
/// regime instead of paying a portfolio spawn per edit.
constexpr std::size_t kSessionOnlyVarLimit = 256;

}  // namespace

maxsat::MaxSatResult MpmcsPipeline::solve_with_session(
    maxsat::IncrementalSolveSession::Guard& session,
    const maxsat::WcnfInstance& working,
    const maxsat::WcnfInstance* raw_working,
    util::CancelTokenPtr cancel) const {
  switch (opts_.solver) {
    case SolverChoice::Oll:
      return solve_session_oll_lsu(session, std::move(cancel));
    case SolverChoice::Lsu:
      return session.solve_lsu(std::move(cancel));
    case SolverChoice::Portfolio:
    case SolverChoice::Stratified: {
      if (working.num_vars() <= kSessionOnlyVarLimit) {
        return solve_session_oll_lsu(session, std::move(cancel));
      }
      // Incremental members run on the persistent session; stateless
      // hedges race on the working instance (which carries any top-k
      // blockers as plain hard clauses) exactly as before. A stateless
      // win cancels the session engines mid-run — their partial progress
      // (cores, learnt clauses) still persists for the next solve.
      auto* guard = &session;
      std::vector<maxsat::PortfolioMember> members;
      members.push_back({"oll-inc", [guard] {
                           return std::make_unique<maxsat::SessionMemberSolver>(
                               "oll-inc", [guard](util::CancelTokenPtr c) {
                                 return guard->solve_oll(std::move(c));
                               });
                         }});
      if (session.lsu_useful()) {
        members.push_back(
            {"lsu-inc", [guard] {
               return std::make_unique<maxsat::SessionMemberSolver>(
                   "lsu-inc", [guard](util::CancelTokenPtr c) {
                     return guard->solve_lsu(std::move(c));
                   });
             }});
      }
      for (auto& member : maxsat::PortfolioSolver::default_members()) {
        // The plain OLL/LSU members are strictly dominated by their
        // incremental twins on this path; keep the diversified hedges.
        if (member.label == "oll" || member.label == "lsu") continue;
        members.push_back(std::move(member));
      }
      // Preprocessing-aware hedging: the raw Step 1-4 artefact races the
      // simplified one the members above are solving.
      if (raw_working != nullptr) append_raw_members(members, raw_working);
      // Structure-enabled members race on the raw artefact (exact hints).
      append_structure_members(members, opts_.sat_structure, raw_working);
      maxsat::PortfolioOptions po;
      po.timeout_seconds = opts_.timeout_seconds;
      maxsat::PortfolioSolver portfolio(std::move(members), po);
      return portfolio.solve(working, std::move(cancel));
    }
    default:
      // prepare() never attaches a session for the remaining choices.
      return make_solver()->solve(working, std::move(cancel));
  }
}

MpmcsSolution MpmcsPipeline::solve_simplified(
    const ft::FaultTree& tree, const maxsat::WcnfInstance& to_solve,
    const preprocess::PreprocessResult* pre,
    const std::vector<bool>& candidates, util::CancelTokenPtr cancel,
    maxsat::IncrementalSolveSession::Guard* session,
    const ft::ShrinkContext* shrink,
    const maxsat::WcnfInstance* raw_working) const {
  util::Timer total;
  MpmcsSolution sol;
  sol.cnf_vars = to_solve.num_vars();
  sol.cnf_clauses = to_solve.hard().size();
  if (pre) {
    sol.preprocess_seconds = pre->stats.seconds;
    sol.preprocess_removed_vars = pre->stats.fixed_vars +
                                  pre->stats.substituted_vars +
                                  pre->stats.eliminated_vars;
    if (pre->unsat) {
      // Refuted at level 0: no model regardless of softs.
      sol.status = maxsat::MaxSatStatus::Unsatisfiable;
      sol.solver_name = "preprocess";
      sol.lineage = "pre";
      sol.total_seconds = total.seconds();
      return sol;
    }
  }

  // Step 5 (parallel MaxSAT resolution, or a single configured solver) —
  // on the persistent incremental session when the caller holds one.
  util::Timer solving;
  maxsat::MaxSatResult r;
  if (session != nullptr && *session) {
    r = solve_with_session(*session, to_solve, raw_working, std::move(cancel));
    if (r.solver_name.empty()) r.solver_name = "incremental";
  } else if (raw_working != nullptr &&
             (opts_.solver == SolverChoice::Portfolio ||
              opts_.solver == SolverChoice::Stratified)) {
    // Stateless hedged race: default members on the simplified instance
    // plus the raw-lineage members on the untouched one.
    auto members = maxsat::PortfolioSolver::default_members();
    append_raw_members(members, raw_working);
    append_structure_members(members, opts_.sat_structure, raw_working);
    maxsat::PortfolioOptions po;
    po.timeout_seconds = opts_.timeout_seconds;
    maxsat::PortfolioSolver portfolio(std::move(members), po);
    r = portfolio.solve(to_solve, std::move(cancel));
    if (r.solver_name.empty()) r.solver_name = portfolio.name();
  } else {
    auto solver = make_solver();
    r = solver->solve(to_solve, std::move(cancel));
    if (r.solver_name.empty()) r.solver_name = solver->name();
  }
  sol.solve_seconds = solving.seconds();
  sol.status = r.status;
  sol.solver_name = r.solver_name;
  sol.sat_decisions = r.decisions;
  sol.sat_propagations = r.propagations;
  sol.sat_conflicts = r.conflicts;
  sol.sat_binary_propagations = r.binary_propagations;
  // A raw-lineage win already pays the UP-forced soft weights inside its
  // own cost; only pre-lineage models add the Step 3.5 offset.
  sol.scaled_cost =
      r.cost + (pre && !r.solved_alternate ? pre->cost_offset : 0);
  sol.lineage = pre == nullptr || r.solved_alternate ? "raw" : "pre";

  // Anytime answers: an Unknown result that carries an incumbent model
  // (LSU's best-so-far, or a portfolio race that ran out of deadline) is
  // still a model of the hard clauses — the cut it encodes is valid, just
  // not proven minimum-cost. Extract it exactly like an optimum and report
  // the certified lower bound alongside so callers can bound the gap.
  const bool incumbent_cut =
      r.status == maxsat::MaxSatStatus::Unknown && r.has_model();
  if (r.status == maxsat::MaxSatStatus::Optimal || incumbent_cut) {
    // Map the model back to the original variable space (fixed,
    // substituted and eliminated variables get their forced values),
    // then read the occurring events off it: they form the cut.
    std::vector<bool> model = r.model;
    if (pre && !r.solved_alternate) {
      // Preprocessing never renumbers, so the simplified instance spans
      // the original variable range already.
      model.resize(to_solve.num_vars(), false);
      pre->reconstructor.extend(model);
    }
    if (model.size() < tree.num_events()) {
      model.resize(tree.num_events(), false);
    }
    std::vector<ft::EventIndex> events;
    for (ft::EventIndex e = 0; e < tree.num_events(); ++e) {
      if (!candidates.empty() && !candidates[e]) continue;
      if (model[e]) events.push_back(e);
    }
    ft::CutSet cut(std::move(events));
    if (opts_.shrink_to_minimal) {
      cut = shrink != nullptr ? shrink->shrink(tree, std::move(cut))
                              : ft::shrink_to_minimal(tree, std::move(cut));
    }

    // Step 6 (reverse log-space transformation) — recomputed exactly from
    // the tree's probabilities rather than the scaled integer cost.
    sol.cut = cut;
    sol.probability = cut.probability(tree);
    sol.log_cost = cut.log_cost(tree);
    if (incumbent_cut) {
      sol.approximate = true;
      // The bound was certified in the result's own model space; lift it
      // into the reporting space the same way as scaled_cost.
      sol.scaled_lower_bound =
          r.lower_bound + (pre && !r.solved_alternate ? pre->cost_offset : 0);
      sol.probability_upper_bound =
          std::exp(-static_cast<double>(sol.scaled_lower_bound) /
                   opts_.weight_scale);
      if (sol.scaled_cost > 0) {
        sol.optimality_gap =
            static_cast<double>(sol.scaled_cost - sol.scaled_lower_bound) /
            static_cast<double>(sol.scaled_cost);
      }
    }
  }
  sol.total_seconds = total.seconds();
  return sol;
}

MpmcsSolution MpmcsPipeline::solve(const ft::FaultTree& tree,
                                   util::CancelTokenPtr cancel) const {
  util::Timer total;
  tree.validate();
  if (opts_.solver == SolverChoice::Stratified) {
    // The stratified strategy needs the decomposition plan (and its
    // per-stratum artefacts); one-shot solves go through prepare too,
    // handing over the plan so it is not computed twice.
    // Non-decomposable trees fall through to the ordinary one-shot path
    // below instead — prepare() would build a session and shrink context
    // only to discard them with the temporary artefact. (AND/vote plans
    // still pay for the monolithic artefacts here: the same prepare()
    // serves cached top-k traffic, which enumerates through them.)
    maxsat::StratifiedPlan plan = maxsat::plan_strata(tree);
    if (plan.applicable) {
      const PreparedInstance prepared =
          prepare_with_plan(tree, std::move(plan), cancel);
      MpmcsSolution sol = solve_prepared(tree, prepared, std::move(cancel));
      sol.total_seconds = total.seconds();
      return sol;
    }
  }
  if (opts_.decompose_top_or &&
      tree.node(tree.top()).type == ft::NodeType::Or) {
    MpmcsSolution sol = solve_decomposed(tree, std::move(cancel));
    sol.total_seconds = total.seconds();
    return sol;
  }
  MpmcsSolution sol =
      solve_instance(tree, build_instance(tree), {}, std::move(cancel));
  sol.total_seconds = total.seconds();
  return sol;
}

PreparedInstance MpmcsPipeline::prepare(const ft::FaultTree& tree,
                                        util::CancelTokenPtr cancel) const {
  maxsat::StratifiedPlan plan;
  if (opts_.solver == SolverChoice::Stratified) {
    plan = maxsat::plan_strata(tree);
  }
  return prepare_with_plan(tree, std::move(plan), std::move(cancel));
}

PreparedInstance MpmcsPipeline::prepare_with_plan(
    const ft::FaultTree& tree, maxsat::StratifiedPlan plan,
    util::CancelTokenPtr cancel) const {
  g_prepare_calls.fetch_add(1, std::memory_order_relaxed);
  PreparedInstance prepared;
  // Stratified decomposition plan, detected up front (by prepare() or by
  // a one-shot solve): when it applies with an OR combine, every solve
  // and top-k on this artefact routes through the per-stratum
  // sub-artefacts, so the whole-tree Step 3.5 pass, session and shrink
  // context would be dead weight (AND and vote combines keep them: their
  // top-k enumerates unions through the monolithic loop). The engine's
  // structural key separates stratified artefacts, so no other solver
  // choice ever sees this entry.
  const bool strata_only =
      plan.applicable && plan.combine == ft::NodeType::Or;
  build_monolithic(tree, strata_only, prepared, cancel);
  // One recursively-prepared sub-artefact (instance + Step 3.5 + session)
  // per module stratum; the modules are where the solving state lives. A
  // pre-filled slot is an artefact the mutation path (patch_prepared)
  // carried over — only dirty strata pay a cold prepare.
  if (plan.applicable) {
    for (maxsat::StratifiedStratum& s : plan.strata) {
      if (!s.trivial && !s.prepared) {
        s.prepared = std::make_shared<const PreparedInstance>(
            prepare(s.module.tree, cancel));
      }
    }
    prepared.strata =
        std::make_shared<const maxsat::StratifiedPlan>(std::move(plan));
    prepared.stratum_memo = std::make_shared<StratumMemo>();
  }
  return prepared;
}

void MpmcsPipeline::build_monolithic(const ft::FaultTree& tree,
                                     bool strata_only,
                                     PreparedInstance& prepared,
                                     util::CancelTokenPtr cancel) const {
  prepared.raw = build_instance(tree);
  prepared.pre.reset();
  prepared.session.reset();
  prepared.shrink.reset();
  if (opts_.preprocess && !strata_only) {
    // `cancel` stays live: the caller's stratified sub-preparation also
    // polls it.
    prepared.pre = std::make_shared<preprocess::PreprocessResult>(
        preprocess::preprocess(prepared.raw, freeze_mask(tree, prepared.raw),
                               effective_preprocess_options(tree, opts_),
                               cancel));
  }
  // The persistent solving state rides with the artefact: whoever caches
  // this PreparedInstance (engine::TreeCache) caches the session too, and
  // a configuration change produces a different structural key — i.e. a
  // fresh session — by construction. Engine construction inside the
  // session is lazy, so prepare() stays as cheap as before. The session
  // is attached regardless of the configured solver: the structural key
  // does not encode the solver choice, so a cache entry built under
  // (say) brute-force traffic must still serve later portfolio requests
  // incrementally.
  if (opts_.incremental && !strata_only &&
      !(prepared.pre && prepared.pre->unsat)) {
    std::shared_ptr<const maxsat::WcnfInstance> instance;
    if (prepared.pre) {
      // Aliasing share: the session keeps the whole preprocess artefact
      // alive and points at its simplified instance.
      instance = std::shared_ptr<const maxsat::WcnfInstance>(
          prepared.pre, &prepared.pre->simplified);
    } else {
      instance = std::make_shared<maxsat::WcnfInstance>(prepared.raw);
    }
    maxsat::IncrementalOptions inc;
    inc.memory_cap_bytes = opts_.incremental_memory_cap_bytes;
    // The session engines install the instance's structure hints (exact
    // on a raw instance, advisory on a preprocessed one).
    inc.oll.structure = opts_.sat_structure;
    inc.lsu.structure = opts_.sat_structure;
    prepared.session = std::make_shared<maxsat::IncrementalSolveSession>(
        std::move(instance), inc);
  }
  // Unconditional (modulo strata_only) for the same cache-sharing reason:
  // a later request with the shrink pass enabled must find the context
  // ready.
  if (!strata_only) {
    prepared.shrink = std::make_shared<const ft::ShrinkContext>(tree);
  }
}

std::uint64_t MpmcsPipeline::prepare_calls() noexcept {
  return g_prepare_calls.load(std::memory_order_relaxed);
}

void MpmcsPipeline::reweight_prepared(const ft::FaultTree& tree,
                                      PreparedInstance& prepared,
                                      bool exclusive,
                                      DeltaApplication& st) const {
  // The tree's structure is unchanged, so every hard clause — raw
  // Tseitin, preprocessed, and everything a SAT session has learnt from
  // them — is still exact. Only the soft side (Step 3/4) and the
  // weight-dependent core-transformation state need replacing.
  const std::vector<bool> used = reachable_events(tree);
  rebuild_softs(tree, used, opts_.weight_scale, prepared.raw);
  if (prepared.pre && !prepared.pre->unsat) {
    // The UP-forced fix set depends only on hard clauses, so under new
    // weights a fixed-true event discharges its (new) weight into the
    // offset, a fixed-false one drops its soft, and every free event
    // keeps a verbatim unit soft — exactly what a fresh Step 3.5 run
    // over the reweighted raw instance would emit.
    //
    // Exclusive artefacts patch the result in place (the hard clauses —
    // the expensive part of a PreprocessResult — are untouched, so the
    // edit costs O(events), not a full artefact copy); shared ones
    // copy-on-write, because cache-shared copies may still point at the
    // old result. The const_cast is sound: every PreprocessResult is
    // created non-const by prepare()/this COW path, and exclusivity is
    // the documented apply_delta contract.
    std::shared_ptr<preprocess::PreprocessResult> copy;
    auto* next = exclusive
                     ? const_cast<preprocess::PreprocessResult*>(
                           prepared.pre.get())
                     : (copy = std::make_shared<preprocess::PreprocessResult>(
                            *prepared.pre))
                           .get();
    next->simplified.clear_soft();
    next->cost_offset = 0;
    const auto scaled = scaled_soft_weights(tree, used, opts_.weight_scale);
    for (ft::EventIndex e = 0; e < tree.num_events(); ++e) {
      if (scaled[e] == 0) continue;
      const logic::LBool v =
          e < next->level0.size() ? next->level0[e] : logic::LBool::Undef;
      if (v == logic::LBool::True) {
        next->cost_offset += scaled[e];
      } else if (v == logic::LBool::Undef) {
        next->simplified.add_soft_unit(Lit::neg(e), scaled[e]);
      }
    }
    if (copy) prepared.pre = std::move(copy);
  }
  if (prepared.session) {
    std::shared_ptr<const maxsat::WcnfInstance> instance;
    if (prepared.pre) {
      instance = std::shared_ptr<const maxsat::WcnfInstance>(
          prepared.pre, &prepared.pre->simplified);
    } else {
      instance = std::make_shared<maxsat::WcnfInstance>(prepared.raw);
    }
    // Exclusively-owned artefacts rebase the live session: learnt
    // clauses and totalizer networks carry over, so the next solve
    // starts warm. Shared ones (cache derive path) get a fresh session —
    // the base's warm state must not be mutated under it.
    if (exclusive && prepared.session->rebase(instance)) {
      st.session_rebased = true;
    } else {
      maxsat::IncrementalOptions inc;
      inc.memory_cap_bytes = opts_.incremental_memory_cap_bytes;
      inc.oll.structure = opts_.sat_structure;
      inc.lsu.structure = opts_.sat_structure;
      prepared.session = std::make_shared<maxsat::IncrementalSolveSession>(
          std::move(instance), inc);
    }
  }
  // Stratified sub-artefacts: the plan's shape is weight-independent, so
  // only modules whose events changed are touched — each gets its module
  // tree reweighted and recurses through this same patch.
  if (prepared.strata && prepared.strata->applicable) {
    auto plan = std::make_shared<maxsat::StratifiedPlan>(*prepared.strata);
    std::vector<bool> touched(plan->strata.size(), false);
    for (std::size_t i = 0; i < plan->strata.size(); ++i) {
      maxsat::StratifiedStratum& s = plan->strata[i];
      if (s.trivial) continue;
      ++st.strata_total;
      bool changed = false;
      for (ft::EventIndex e = 0; e < s.module.tree.num_events(); ++e) {
        const double p = tree.event_probability(s.module.event_map[e]);
        if (s.module.tree.event_probability(e) != p) {
          s.module.tree.set_event_probability(e, p);
          changed = true;
        }
      }
      if (!changed || !s.prepared) {
        ++st.strata_reused;
        continue;
      }
      auto sub = std::make_shared<PreparedInstance>(*s.prepared);
      reweight_prepared(s.module.tree, *sub, exclusive, st);
      s.prepared = std::move(sub);
      touched[i] = true;
      ++st.strata_reweighted;
    }
    // Memo: entries of untouched strata stay valid (their events, and
    // hence their optima and costs, did not change); touched ones drop.
    auto memo = std::make_shared<StratumMemo>();
    if (prepared.stratum_memo) {
      std::lock_guard<std::mutex> lock(prepared.stratum_memo->mutex);
      for (const auto& [key, vec] : prepared.stratum_memo->entries) {
        auto& kept = memo->entries[key];
        kept.resize(plan->strata.size());
        for (std::size_t i = 0; i < vec.size() && i < kept.size(); ++i) {
          if (!touched[i]) kept[i] = vec[i];
        }
      }
    }
    prepared.stratum_memo = std::move(memo);
    prepared.strata = std::move(plan);
  }
}

DeltaApplication MpmcsPipeline::patch_prepared(
    const ft::FaultTree& new_tree, const ft::TreeDelta& delta,
    PreparedInstance& prepared, bool exclusive,
    util::CancelTokenPtr cancel) const {
  DeltaApplication st;
  st.weight_only = delta.weight_only();
  if (st.weight_only) {
    reweight_prepared(new_tree, prepared, exclusive, st);
    return st;
  }
  // Structural edit. When the artefact is stratified and the new tree
  // decomposes compatibly, only strata whose module actually changed pay
  // a cold prepare; a splice keeps existing node indices, so strata pair
  // up by their top-child NodeIndex.
  if (prepared.strata && prepared.strata->applicable) {
    maxsat::StratifiedPlan next = maxsat::plan_strata(new_tree);
    const maxsat::StratifiedPlan& old = *prepared.strata;
    if (next.applicable && next.combine == old.combine && next.k == old.k) {
      std::unordered_map<ft::NodeIndex, std::size_t> by_gate;
      for (std::size_t i = 0; i < old.strata.size(); ++i) {
        by_gate.emplace(old.strata[i].gate, i);
      }
      std::vector<std::ptrdiff_t> reused_from(next.strata.size(), -1);
      std::vector<std::size_t> dirty;
      for (std::size_t i = 0; i < next.strata.size(); ++i) {
        maxsat::StratifiedStratum& s = next.strata[i];
        if (s.trivial) continue;
        ++st.strata_total;
        const auto it = by_gate.find(s.gate);
        if (it != by_gate.end()) {
          const maxsat::StratifiedStratum& o = old.strata[it->second];
          if (!o.trivial && o.prepared) {
            if (ft::structural_equal(s.module.tree, o.module.tree)) {
              // Identical module (shape and weights): share the artefact,
              // warm session included.
              s.prepared = o.prepared;
              reused_from[i] = static_cast<std::ptrdiff_t>(it->second);
              ++st.strata_reused;
              continue;
            }
            if (ft::structural_equal(s.module.tree, o.module.tree,
                                     /*compare_probabilities=*/false)) {
              // Same hard clauses, new weights: patch instead of
              // re-preparing (the splice happened elsewhere; this module
              // only saw weight drift via shared events).
              auto sub = std::make_shared<PreparedInstance>(*o.prepared);
              reweight_prepared(s.module.tree, *sub, exclusive, st);
              s.prepared = std::move(sub);
              ++st.strata_reweighted;
              continue;
            }
          }
        }
        dirty.push_back(i);
      }
      // The monolithic artefacts span the whole tree, so a structural
      // edit invalidates them wholesale (their hard clauses changed) —
      // rebuild, cold. For OR combines this is just the raw instance.
      build_monolithic(new_tree, next.combine == ft::NodeType::Or, prepared,
                       cancel);
      for (const std::size_t i : dirty) {
        maxsat::StratifiedStratum& s = next.strata[i];
        s.prepared = std::make_shared<const PreparedInstance>(
            prepare(s.module.tree, cancel));
        ++st.strata_reprepared;
      }
      // Memo entries follow the strata they were computed for; anything
      // reweighted or re-prepared starts empty.
      auto memo = std::make_shared<StratumMemo>();
      if (prepared.stratum_memo) {
        std::lock_guard<std::mutex> lock(prepared.stratum_memo->mutex);
        for (const auto& [key, vec] : prepared.stratum_memo->entries) {
          auto& kept = memo->entries[key];
          kept.resize(next.strata.size());
          for (std::size_t i = 0; i < next.strata.size(); ++i) {
            const std::ptrdiff_t j = reused_from[i];
            if (j >= 0 && static_cast<std::size_t>(j) < vec.size()) {
              kept[i] = vec[j];
            }
          }
        }
      }
      prepared.stratum_memo = std::move(memo);
      prepared.strata =
          std::make_shared<const maxsat::StratifiedPlan>(std::move(next));
      return st;
    }
  }
  // No patchable structure (monolithic artefact, or the decomposition
  // shape itself changed): cold re-prepare.
  prepared = prepare(new_tree, std::move(cancel));
  st.reprepared = true;
  return st;
}

DeltaApplication MpmcsPipeline::apply_delta(const ft::FaultTree& new_tree,
                                            const ft::TreeDelta& delta,
                                            PreparedInstance& prepared,
                                            util::CancelTokenPtr cancel) const {
  return patch_prepared(new_tree, delta, prepared, /*exclusive=*/true,
                        std::move(cancel));
}

PreparedInstance MpmcsPipeline::derive_prepared(
    const ft::FaultTree& new_tree, const ft::TreeDelta& delta,
    const PreparedInstance& base, DeltaApplication* stats,
    util::CancelTokenPtr cancel) const {
  PreparedInstance out = base;
  const DeltaApplication st =
      patch_prepared(new_tree, delta, out, /*exclusive=*/false,
                     std::move(cancel));
  if (stats) *stats = st;
  return out;
}

MpmcsSolution MpmcsPipeline::solve_prepared(const ft::FaultTree& tree,
                                            const PreparedInstance& prepared,
                                            util::CancelTokenPtr cancel) const {
  util::Timer total;
  if (opts_.solver == SolverChoice::Stratified && prepared.strata &&
      prepared.strata->applicable) {
    MpmcsSolution sol = solve_stratified(tree, prepared, std::move(cancel));
    sol.total_seconds = total.seconds();
    return sol;
  }
  const preprocess::PreprocessResult* pre = prepared.pre.get();
  const maxsat::WcnfInstance* raw =
      pre != nullptr && opts_.hedging_effective() ? &prepared.raw : nullptr;
  // Concurrent solves of the same cached structure race for the session;
  // losers simply take the stateless path.
  maxsat::IncrementalSolveSession::Guard guard;
  if (prepared.session) guard = prepared.session->try_acquire();
  MpmcsSolution sol =
      solve_simplified(tree, pre ? pre->simplified : prepared.raw, pre, {},
                       std::move(cancel), guard ? &guard : nullptr,
                       prepared.shrink.get(), raw);
  sol.total_seconds = total.seconds();
  return sol;
}

MpmcsSolution MpmcsPipeline::solve_prepared(const ft::FaultTree& tree,
                                            const maxsat::WcnfInstance& instance,
                                            util::CancelTokenPtr cancel) const {
  util::Timer total;
  MpmcsSolution sol = solve_instance(tree, instance, {}, std::move(cancel));
  sol.total_seconds = total.seconds();
  return sol;
}

std::future<MpmcsSolution> MpmcsPipeline::solve_async(
    ft::FaultTree tree, util::CancelTokenPtr cancel) const {
  // The task owns copies of the tree and the pipeline configuration, so
  // the future stays valid even if both originals die before get().
  return std::async(std::launch::async,
                    [pipeline = *this, tree = std::move(tree),
                     cancel = std::move(cancel)]() {
                      return pipeline.solve(tree, cancel);
                    });
}

MpmcsSolution MpmcsPipeline::solve_decomposed(const ft::FaultTree& tree,
                                              util::CancelTokenPtr cancel) const {
  // MPMCS(f1 | ... | fk) = argmax_i MPMCS(f_i): any cut of a child is a
  // cut of the whole, and the global maximum-probability MCS is minimal
  // within some child (dropping events never lowers the probability).
  // Each child instance still carries every event's soft clause, so
  // extracted models stay clean; the shrink pass enforces minimality with
  // respect to the *full* tree.
  logic::FormulaStore store;
  MpmcsSolution best;
  bool have_best = false;
  double solve_seconds = 0.0;
  std::size_t cnf_vars = 0;
  std::size_t cnf_clauses = 0;
  for (const ft::NodeIndex child : tree.node(tree.top()).children) {
    const logic::NodeId f = tree.to_formula(store, child);
    std::vector<bool> used;
    maxsat::WcnfInstance inst = instance_for_formula(tree, store, f, &used);
    MpmcsSolution sub = solve_instance(tree, std::move(inst), used, cancel);
    solve_seconds += sub.solve_seconds;
    cnf_vars = std::max(cnf_vars, sub.cnf_vars);
    cnf_clauses += sub.cnf_clauses;
    if (sub.status == maxsat::MaxSatStatus::Unsatisfiable) {
      continue;  // this alternative cannot fire at all
    }
    if (sub.status != maxsat::MaxSatStatus::Optimal) {
      // One undecided child makes the global argmax unproven.
      MpmcsSolution unknown;
      unknown.status = sub.status;
      unknown.solver_name = sub.solver_name;
      unknown.solve_seconds = solve_seconds;
      return unknown;
    }
    if (!have_best || sub.probability > best.probability) {
      best = sub;
      have_best = true;
    }
  }
  if (!have_best) {
    MpmcsSolution unsat;
    unsat.status = maxsat::MaxSatStatus::Unsatisfiable;
    unsat.solve_seconds = solve_seconds;
    return unsat;
  }
  best.solve_seconds = solve_seconds;
  best.cnf_vars = cnf_vars;
  best.cnf_clauses = cnf_clauses;
  best.solver_name += "+decomp";
  return best;
}

MpmcsSolution MpmcsPipeline::solve_stratified(
    const ft::FaultTree& tree, const PreparedInstance& prepared,
    util::CancelTokenPtr cancel) const {
  const maxsat::StratifiedPlan& plan = *prepared.strata;
  util::Timer total;
  MpmcsSolution sol;
  sol.solver_name = "stratified";
  sol.lineage = "strata";
  // Per-stratum optima memo: a stratum solved once under this
  // configuration is free on every later solve of the artefact, and the
  // mutation path invalidates exactly the entries an edit touched — the
  // re-solve after a local edit pays SAT calls for that module only.
  // The key covers the options that change a stratum's *answer* (shrink
  // drops gratuitous members); costs are in the tree's weight space,
  // which the structural key already pins.
  const std::string memo_key =
      std::string(opts_.shrink_to_minimal ? "s" : "-") +
      (opts_.hedging_effective() ? "h" : "-");
  std::vector<std::optional<maxsat::StratumOutcome>> memo;
  if (prepared.stratum_memo) {
    std::lock_guard<std::mutex> lock(prepared.stratum_memo->mutex);
    const auto it = prepared.stratum_memo->entries.find(memo_key);
    if (it != prepared.stratum_memo->entries.end()) memo = it->second;
  }
  memo.resize(plan.strata.size());
  bool memo_grew = false;
  // One sub-solve per stratum (trivial single-event strata are closed
  // form), each on its own prepared sub-artefact and incremental session.
  std::vector<maxsat::StratumOutcome> outcomes(plan.strata.size());
  for (std::size_t i = 0; i < plan.strata.size(); ++i) {
    const maxsat::StratifiedStratum& s = plan.strata[i];
    maxsat::StratumOutcome& o = outcomes[i];
    if (s.trivial) {
      o.status = maxsat::MaxSatStatus::Optimal;
      o.cut = ft::CutSet({s.event});
      o.cost =
          maxsat::scaled_cut_cost(tree, o.cut.events(), opts_.weight_scale);
      continue;
    }
    if (memo[i]) {
      o = *memo[i];
      continue;
    }
    const MpmcsSolution sub =
        solve_prepared(s.module.tree, *s.prepared, cancel);
    sol.solve_seconds += sub.solve_seconds;
    sol.cnf_vars = std::max(sol.cnf_vars, sub.cnf_vars);
    sol.cnf_clauses += sub.cnf_clauses;
    sol.preprocess_seconds += sub.preprocess_seconds;
    sol.preprocess_removed_vars += sub.preprocess_removed_vars;
    o.status = sub.status;
    if (sub.status == maxsat::MaxSatStatus::Optimal) {
      std::vector<ft::EventIndex> mapped;
      mapped.reserve(sub.cut.size());
      for (const ft::EventIndex e : sub.cut.events()) {
        mapped.push_back(s.module.event_map[e]);
      }
      o.cut = ft::CutSet(std::move(mapped));
      o.cost =
          maxsat::scaled_cut_cost(tree, o.cut.events(), opts_.weight_scale);
      memo[i] = o;
      memo_grew = true;
    }
  }
  if (memo_grew && prepared.stratum_memo) {
    std::lock_guard<std::mutex> lock(prepared.stratum_memo->mutex);
    auto& stored = prepared.stratum_memo->entries[memo_key];
    stored.resize(plan.strata.size());
    for (std::size_t i = 0; i < plan.strata.size(); ++i) {
      if (memo[i] && !stored[i]) stored[i] = memo[i];
    }
  }

  const maxsat::Recombined rec = maxsat::recombine(plan, outcomes);
  sol.status = rec.status;
  if (rec.status == maxsat::MaxSatStatus::Optimal) {
    // Step 6 exactly as the monolithic path: probability recomputed from
    // the tree over the recombined cut; unavoidable p == 0 members carry
    // the monolithic instance's per-event forbidden weight.
    sol.cut = rec.cut;
    sol.probability = sol.cut.probability(tree);
    sol.log_cost = sol.cut.log_cost(tree);
    sol.scaled_cost = rec.cost.ordinary;
    if (rec.cost.impossible > 0) {
      sol.scaled_cost +=
          rec.cost.impossible *
          maxsat::forbidden_weight(tree, plan, opts_.weight_scale);
    }
  }
  sol.total_seconds = total.seconds();
  return sol;
}

std::vector<MpmcsSolution> MpmcsPipeline::top_k_stratified(
    const ft::FaultTree& tree, const maxsat::StratifiedPlan& plan,
    std::size_t k, util::CancelTokenPtr cancel,
    maxsat::MaxSatStatus* final_status) const {
  // Lazy k-way merge over per-stratum streams: each stratum starts at its
  // own optimum and is only deepened when the merge consumes its head, so
  // the total work is (#strata top-1 solves + at most k deepenings of
  // tiny sub-instances) instead of #strata * k eager enumerations. Sound
  // because the global k best contain at most j cuts of any one stratum,
  // and those are within the stratum's own j best.
  struct Stream {
    const maxsat::StratifiedStratum* stratum = nullptr;
    std::vector<MpmcsSolution> found;  ///< Mapped to original indices.
    std::vector<maxsat::ScaledCutCost> costs;  ///< Parallel to `found`.
    std::vector<ft::CutSet> emitted;  ///< Cuts this merge already output.
    std::size_t head = 0;  ///< Index into `found` of the current head.
    bool exhausted = false;
    bool unknown = false;
  };
  std::vector<Stream> streams(plan.strata.size());

  const auto deepen = [&](Stream& st, std::size_t depth) {
    if (st.exhausted || st.unknown || st.found.size() >= depth) return;
    const maxsat::StratifiedStratum& s = *st.stratum;
    if (s.trivial) {
      MpmcsSolution sol;
      sol.status = maxsat::MaxSatStatus::Optimal;
      sol.cut = ft::CutSet({s.event});
      st.found.push_back(std::move(sol));
      st.exhausted = true;  // a single event has a single (unit) cut
      return;
    }
    // Re-enumerates the stratum's first `depth` cuts; the sub-artefact's
    // warm session makes the replayed rounds cheap.
    maxsat::MaxSatStatus sub_status = maxsat::MaxSatStatus::Optimal;
    const std::vector<MpmcsSolution> subs =
        top_k_prepared(s.module.tree, *s.prepared, depth, cancel, &sub_status);
    st.unknown = sub_status == maxsat::MaxSatStatus::Unknown;
    st.exhausted = !st.unknown && subs.size() < depth;
    st.found.clear();
    st.costs.clear();
    st.found.reserve(subs.size());
    for (const MpmcsSolution& sub : subs) {
      MpmcsSolution sol = sub;
      std::vector<ft::EventIndex> mapped;
      mapped.reserve(sub.cut.size());
      for (const ft::EventIndex ev : sub.cut.events()) {
        mapped.push_back(s.module.event_map[ev]);
      }
      sol.cut = ft::CutSet(std::move(mapped));
      st.found.push_back(std::move(sol));
    }
  };

  for (std::size_t i = 0; i < plan.strata.size(); ++i) {
    streams[i].stratum = &plan.strata[i];
    deepen(streams[i], 1);
  }
  const auto is_emitted = [](const Stream& st, const ft::CutSet& cut) {
    return std::find(st.emitted.begin(), st.emitted.end(), cut) !=
           st.emitted.end();
  };
  // Positions `head` at the cheapest not-yet-emitted entry (found is in
  // enumeration = cost order). A nondeterministic sub-solver may reorder
  // equal-cost ties between deepenings, so already-emitted cuts are
  // skipped by identity, never by index; when the whole enumeration was
  // consumed, one deepening to emitted+1 distinct cuts is guaranteed to
  // surface a fresh one (or prove the family exhausted). Returns false
  // when the stream has nothing more to offer.
  const auto advance = [&](Stream& st) -> bool {
    for (int pass = 0; pass < 2; ++pass) {
      for (st.head = 0; st.head < st.found.size(); ++st.head) {
        if (!is_emitted(st, st.found[st.head].cut)) return true;
      }
      if (st.exhausted || st.unknown) return false;
      deepen(st, st.emitted.size() + 1);
    }
    return false;
  };
  const auto head_cost = [&](Stream& st) {
    while (st.costs.size() <= st.head) {
      st.costs.push_back(maxsat::scaled_cut_cost(
          tree, st.found[st.costs.size()].cut.events(), opts_.weight_scale));
    }
    return st.costs[st.head];
  };

  std::vector<MpmcsSolution> out;
  out.reserve(k);
  while (out.size() < k) {
    // Merge by the monolithic enumeration order (non-decreasing scaled
    // cost); the linear scan is over at most #strata heads. Ties resolve
    // to the earlier stratum, deterministically.
    Stream* best = nullptr;
    for (Stream& st : streams) {
      if (!advance(st)) continue;
      if (best == nullptr || head_cost(st) < head_cost(*best)) best = &st;
    }
    if (best == nullptr) break;  // every stream exhausted (or undecided)
    MpmcsSolution sol = best->found[best->head];
    const maxsat::ScaledCutCost cost = head_cost(*best);
    sol.solver_name = "stratified";
    sol.lineage = "strata";
    sol.scaled_cost = cost.ordinary;
    if (cost.impossible > 0) {
      sol.scaled_cost += cost.impossible * maxsat::forbidden_weight(
                                               tree, plan, opts_.weight_scale);
    }
    sol.probability = sol.cut.probability(tree);
    sol.log_cost = sol.cut.log_cost(tree);
    best->emitted.push_back(sol.cut);
    out.push_back(std::move(sol));
  }
  // An undecided stream poisons exactness even with k results in hand:
  // its undiscovered cuts could outrank any of ours (mirrors the
  // monolithic loop, which reports Unknown for a failed round).
  const bool any_unknown =
      std::any_of(streams.begin(), streams.end(),
                  [](const Stream& st) { return st.unknown; });
  if (final_status) {
    *final_status = any_unknown    ? maxsat::MaxSatStatus::Unknown
                    : out.size() == k ? maxsat::MaxSatStatus::Optimal
                                      : maxsat::MaxSatStatus::Unsatisfiable;
  }
  return out;
}

std::vector<MpmcsSolution> MpmcsPipeline::top_k(
    const ft::FaultTree& tree, std::size_t k, util::CancelTokenPtr cancel,
    maxsat::MaxSatStatus* final_status) const {
  const PreparedInstance prepared = prepare(tree, cancel);
  return top_k_prepared(tree, prepared, k, std::move(cancel), final_status);
}

std::vector<MpmcsSolution> MpmcsPipeline::top_k_prepared(
    const ft::FaultTree& tree, const PreparedInstance& prepared,
    std::size_t k, util::CancelTokenPtr cancel,
    maxsat::MaxSatStatus* final_status) const {
  tree.validate();
  if (final_status) *final_status = maxsat::MaxSatStatus::Optimal;
  if (opts_.solver == SolverChoice::Stratified && prepared.strata &&
      prepared.strata->applicable &&
      prepared.strata->combine == ft::NodeType::Or) {
    // OR plans: the tree's MCS family is the disjoint union of the
    // stratum families, so per-stratum streams merge exactly. AND/vote
    // plans enumerate unions of stratum cuts — those fall through to the
    // monolithic superset-blocking loop below (with the stratified
    // session racing as usual).
    return top_k_stratified(tree, *prepared.strata, k, std::move(cancel),
                            final_status);
  }
  std::vector<MpmcsSolution> out;
  // Steps 1-4 and 3.5 ran once (possibly in an earlier request — the
  // engine's structural cache hands the same artefact to every repeat);
  // every round then appends its blocking clause and pays Step 5 only.
  // Sound because blocking clauses mention only event variables, which
  // are frozen — the reconstructor stays valid. With an incremental
  // session the blockers are retractable (activation-literal-guarded)
  // clauses on the live solver, so each round resumes from the previous
  // round's solver state instead of solving from scratch; the
  // working-instance copy still accumulates them as plain hard clauses
  // for the stateless portfolio hedges.
  const preprocess::PreprocessResult* pre = prepared.pre.get();
  maxsat::WcnfInstance working = pre ? pre->simplified : prepared.raw;
  // The raw-lineage hedge twin accumulates the same blocking clauses
  // (they mention only event variables, valid in both spaces).
  const bool hedged = pre != nullptr && opts_.hedging_effective();
  maxsat::WcnfInstance working_raw;
  if (hedged) working_raw = prepared.raw;
  maxsat::IncrementalSolveSession::Guard guard;
  if (prepared.session) guard = prepared.session->try_acquire();
  // The context opens lazily at the first blocker: round 1 is
  // semantically context-free, so it runs on (and converges) the
  // session's persistent base state, which rounds 2..k then copy.
  bool context_open = false;
  for (std::size_t i = 0; i < k; ++i) {
    MpmcsSolution sol =
        solve_simplified(tree, working, pre, {}, cancel,
                         guard ? &guard : nullptr, prepared.shrink.get(),
                         hedged ? &working_raw : nullptr);
    if (sol.status != maxsat::MaxSatStatus::Optimal) {
      if (final_status) *final_status = sol.status;
      break;
    }
    out.push_back(sol);
    if (sol.cut.size() == 0) break;  // degenerate: constant-true tree
    // Block this cut and every superset: at least one member must be
    // absent in any further solution. Members fixed true at level 0 can
    // never be absent, so their literals drop out of the clause.
    logic::Clause block;
    block.reserve(sol.cut.size());
    for (ft::EventIndex e : sol.cut.events()) {
      if (pre && pre->fixed_true(e)) continue;
      block.push_back(Lit::neg(e));
    }
    if (block.empty()) {
      // The whole cut is forced: every further model is a superset.
      if (final_status) *final_status = maxsat::MaxSatStatus::Unsatisfiable;
      break;
    }
    if (guard) {
      if (!context_open) {
        guard.begin_context();
        context_open = true;
      }
      guard.add_blocking_clause(block);
    }
    if (hedged) working_raw.add_hard(block);
    working.add_hard(std::move(block));
  }
  if (guard && context_open) guard.end_context();
  return out;
}

std::string MpmcsPipeline::to_json(const ft::FaultTree& tree,
                                   const MpmcsSolution& solution) {
  std::optional<ft::JsonSolution> js;
  if (solution.status == maxsat::MaxSatStatus::Optimal) {
    ft::JsonSolution s;
    s.mpmcs = solution.cut;
    s.probability = solution.probability;
    s.log_cost = solution.log_cost;
    s.solver = solution.solver_name;
    s.solve_seconds = solution.solve_seconds;
    js = std::move(s);
  }
  return ft::to_json(tree, js);
}

}  // namespace fta::core
