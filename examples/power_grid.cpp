// Substation power-supply reliability with voting gates (the paper's
// "additional operators such as voting gates" future-work item).
//
// A protection relay bus loses power when the station service supply
// fails: 2-of-3 battery strings AND both charger feeds, or the DC bus
// itself. The example builds the tree programmatically, computes the
// MPMCS with the MaxSAT pipeline, cross-checks it against the exact
// BDD/ZBDD baseline, and writes a Graphviz rendering with the MPMCS
// highlighted.
//
//   $ ./power_grid [out.dot]
#include <cstdio>
#include <fstream>

#include "bdd/fta_bdd.hpp"
#include "core/pipeline.hpp"
#include "ft/builder.hpp"
#include "ft/dot_writer.hpp"

int main(int argc, char** argv) {
  using namespace fta;

  ft::FaultTreeBuilder b;
  // Battery strings age at different rates.
  const auto bat1 = b.event("battery_string_1", 0.012);
  const auto bat2 = b.event("battery_string_2", 0.018);
  const auto bat3 = b.event("battery_string_3", 0.025);
  const auto batteries = b.vote("BATTERIES_2oo3", 2, {bat1, bat2, bat3});

  // Two charger feeds from separate MV buses.
  const auto feed_a = b.event("charger_feed_A", 0.05);
  const auto feed_b = b.event("charger_feed_B", 0.07);
  const auto rect_a = b.event("rectifier_A", 0.02);
  const auto rect_b = b.event("rectifier_B", 0.03);
  const auto charger_a = b.or_("CHARGER_A", {feed_a, rect_a});
  const auto charger_b = b.or_("CHARGER_B", {feed_b, rect_b});
  const auto chargers = b.and_("CHARGERS_BOTH", {charger_a, charger_b});

  // Standby sources exhausted: batteries degraded AND both chargers out.
  const auto standby = b.and_("STANDBY_EXHAUSTED", {batteries, chargers});

  // Direct DC-bus faults.
  const auto bus_short = b.event("dc_bus_short", 0.001);
  const auto breaker = b.event("dc_main_breaker_trip", 0.004);
  const auto bus = b.or_("DC_BUS_FAULT", {bus_short, breaker});

  b.top(b.or_("RELAY_SUPPLY_LOST", {standby, bus}));
  const ft::FaultTree tree = std::move(b).build();

  std::printf("Substation DC supply: %zu events, %zu gates\n\n",
              tree.stats().events, tree.stats().gates);

  // MaxSAT pipeline (the paper's method).
  core::MpmcsPipeline pipeline;
  const auto sol = pipeline.solve(tree);
  if (sol.status != maxsat::MaxSatStatus::Optimal) {
    std::printf("pipeline failed\n");
    return 1;
  }
  std::printf("MaxSAT MPMCS : %s  P = %g  (%s, %.2f ms)\n",
              sol.cut.to_string(tree).c_str(), sol.probability,
              sol.solver_name.c_str(), sol.solve_seconds * 1e3);

  // Exact BDD baseline (the paper's future-work comparison).
  bdd::FaultTreeBdd baseline(tree);
  const auto bdd_best = baseline.mpmcs();
  std::printf("BDD    MPMCS : %s  P = %g  (%.0f MCSs total, BDD %zu nodes)\n",
              bdd_best->first.to_string(tree).c_str(), bdd_best->second,
              baseline.mcs_count(), baseline.bdd_size());
  std::printf("exact P(top) : %g\n\n", baseline.top_probability());

  if (sol.cut == bdd_best->first) {
    std::printf("MaxSAT and BDD agree on the MPMCS.\n");
  } else {
    std::printf("MaxSAT and BDD picked equi-probable cuts: %g vs %g\n",
                sol.probability, bdd_best->second);
  }

  const char* path = argc > 1 ? argv[1] : "power_grid.dot";
  std::ofstream out(path);
  out << ft::to_dot(tree, sol.cut);
  std::printf("Graphviz rendering with MPMCS highlighted: %s\n", path);
  return 0;
}
