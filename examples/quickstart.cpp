// Quickstart: the paper's running example end to end.
//
// Builds the Fig. 1 Fire Protection System fault tree, runs the MaxSAT
// pipeline, and prints the MPMCS ({x1, x2}, P = 0.02) plus the full
// probability-ranked list of minimal cut sets.
//
//   $ ./quickstart
#include <cstdio>

#include "core/pipeline.hpp"
#include "ft/builder.hpp"

int main() {
  using namespace fta;

  // The Fig. 1 tree ships with the library; building it by hand looks like:
  //   FaultTreeBuilder b;
  //   auto x1 = b.event("x1", 0.2);
  //   ...
  //   b.top(b.or_("FPS_FAILS", {detection, suppression}));
  const ft::FaultTree tree = ft::fire_protection_system();

  std::printf("Fire Protection System fault tree\n");
  std::printf("  events: %zu, gates: %zu\n\n", tree.stats().events,
              tree.stats().gates);

  core::MpmcsPipeline pipeline;  // default: parallel portfolio (Step 5)
  const core::MpmcsSolution sol = pipeline.solve(tree);
  if (sol.status != maxsat::MaxSatStatus::Optimal) {
    std::printf("no solution found\n");
    return 1;
  }

  std::printf("MPMCS          : %s\n", sol.cut.to_string(tree).c_str());
  std::printf("probability    : %g\n", sol.probability);
  std::printf("log-space cost : %.5f\n", sol.log_cost);
  std::printf("winning solver : %s\n", sol.solver_name.c_str());
  std::printf("solve time     : %.3f ms\n\n", sol.solve_seconds * 1e3);

  std::printf("All minimal cut sets, most probable first:\n");
  for (const auto& s : pipeline.top_k(tree, 16)) {
    std::printf("  P = %-8g %s\n", s.probability,
                s.cut.to_string(tree).c_str());
  }
  return 0;
}
