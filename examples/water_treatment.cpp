// Cyber-physical water treatment plant (the application domain motivating
// the paper: industrial control systems under combined hardware failures
// and cyber attacks, cf. the authors' ICS security line of work).
//
// The scenario models "unsafe water leaves the plant" as the top event
// over a chlorination subsystem, a sensing/PLC chain exposed to network
// attacks, and a supervisory (SCADA) layer. The example parses the tree
// from the text format, then runs the complete analysis battery:
// MPMCS, top-5 cut ranking, exact top-event probability, SPOFs and
// importance measures.
//
//   $ ./water_treatment
#include <cstdio>

#include "analysis/importance.hpp"
#include "analysis/quantitative.hpp"
#include "core/pipeline.hpp"
#include "ft/parser.hpp"
#include "mocus/mocus.hpp"

namespace {

const char* kPlant = R"(
// Top event: unsafe (under-chlorinated) water is distributed.
toplevel UNSAFE_WATER;
UNSAFE_WATER or DOSING_FAIL QUALITY_CHECK_FAIL;

// Chlorine dosing fails if the pump subsystem fails or control is lost.
DOSING_FAIL or PUMP_SUBSYS CONTROL_LOSS;
PUMP_SUBSYS 2of3 pump_a pump_b pump_c;      // redundant dosing pumps
CONTROL_LOSS or PLC_FAIL ACTUATOR_STUCK;

// The PLC fails on hardware faults, firmware bugs, or a network intrusion
// that alters setpoints.
PLC_FAIL or plc_hw plc_fw INTRUSION;
INTRUSION and vpn_breach weak_segmentation;

// Water-quality checking: both the inline chlorine analyser and the lab
// sampling path must fail for bad water to pass unnoticed.
QUALITY_CHECK_FAIL and ANALYSER_FAIL manual_sampling_missed;
ANALYSER_FAIL or analyser_drift analyser_power SENSOR_SPOOF;
SENSOR_SPOOF and vpn_breach modbus_spoof;

// Leaf probabilities (per demand).
pump_a prob=0.04;
pump_b prob=0.04;
pump_c prob=0.04;
actuator_stuck_unused prob=0.0;     // placeholder, unused leaf
plc_hw prob=0.002;
plc_fw prob=0.005;
vpn_breach prob=0.03;
weak_segmentation prob=0.4;
analyser_drift prob=0.01;
analyser_power prob=0.001;
modbus_spoof prob=0.25;
manual_sampling_missed prob=0.08;
ACTUATOR_STUCK or actuator_jam;
actuator_jam prob=0.003;
)";

}  // namespace

int main() {
  using namespace fta;
  const ft::FaultTree tree = ft::parse_fault_tree(kPlant);

  std::printf("Water treatment plant: %zu events, %zu gates (%zu voting)\n\n",
              tree.stats().events, tree.stats().gates,
              tree.stats().vote_gates);

  // --- MPMCS via the MaxSAT pipeline -----------------------------------
  core::MpmcsPipeline pipeline;
  const auto sol = pipeline.solve(tree);
  if (sol.status != maxsat::MaxSatStatus::Optimal) {
    std::printf("pipeline failed\n");
    return 1;
  }
  std::printf("MPMCS: %s  (P = %g, found by %s in %.2f ms)\n\n",
              sol.cut.to_string(tree).c_str(), sol.probability,
              sol.solver_name.c_str(), sol.solve_seconds * 1e3);

  std::printf("Most probable failure/attack combinations:\n");
  for (const auto& s : pipeline.top_k(tree, 5)) {
    std::printf("  P = %-10.3g %s\n", s.probability,
                s.cut.to_string(tree).c_str());
  }

  // --- quantitative layer ----------------------------------------------
  const auto mcs = mocus::mocus(tree);
  std::printf("\nExact P(top)          : %.6g\n",
              analysis::top_event_probability(tree));
  std::printf("rare-event approx.    : %.6g\n",
              analysis::rare_event_approximation(tree, mcs.cut_sets));
  std::printf("min-cut upper bound   : %.6g\n",
              analysis::min_cut_upper_bound(tree, mcs.cut_sets));
  std::printf("minimal cut sets      : %zu\n", mcs.cut_sets.size());

  const auto spofs = analysis::single_points_of_failure(tree, mcs.cut_sets);
  std::printf("single points of fail : %zu\n", spofs.size());
  for (const auto e : spofs) {
    std::printf("    %s\n", tree.event(e).name.c_str());
  }

  std::printf("\nTop-5 events by Birnbaum importance:\n");
  const auto ranked = analysis::ranked_by_birnbaum(tree, mcs.cut_sets);
  for (std::size_t i = 0; i < ranked.size() && i < 5; ++i) {
    std::printf("  %-24s birnbaum=%-10.4g criticality=%-10.4g fv=%.4g\n",
                tree.event(ranked[i].event).name.c_str(), ranked[i].birnbaum,
                ranked[i].criticality, ranked[i].fussell_vesely);
  }
  return 0;
}
