// mpmcs4fta_cli: command-line MPMCS computation, mirroring the paper's
// open-source tool (command line in, JSON out; Fig. 2 of the paper shows
// that JSON rendered in a browser).
//
//   usage: mpmcs4fta_cli [options] <tree.ft>
//          mpmcs4fta_cli [options] --batch <dir>
//     --solver NAME   portfolio (default) | oll | fu-malik | lsu | brute
//                     | stratified (module decomposition; falls back to
//                     the portfolio on non-decomposable trees)
//     --top K         also report the K most probable MCSs
//     --json PATH     write the JSON result document ('-' for stdout)
//     --dot PATH      write Graphviz with the MPMCS highlighted
//     --wcnf PATH     export the Step-4 Weighted Partial MaxSAT instance
//                     in standard WCNF (for external MaxSAT solvers)
//     --scale S       weight scaling factor (default 1e6)
//     --card-lowering MODE  vote-gate encoding: expand | totalizer | auto
//     --no-preprocess skip the Step 3.5 WCNF simplification
//     --no-hedge      don't race the raw instance against the
//                     preprocessed one in portfolio solves
//     --timeout SEC   per-tree wall-clock cap
//     --format F      input format: auto (default) | json | galileo | openpsa
//     --mission-time T  horizon for Galileo `lambda=` basic events
//     --batch DIR     analyse every tree file (*.ft, *.dft, *.xml, *.opsa,
//                     *.json) in DIR concurrently and emit one JSON summary
//     --jobs N        batch worker threads (default: hardware concurrency)
//     --quiet         suppress the human-readable summary
//
//   usage: mpmcs4fta_cli export-wcnf [options] <tree> [--wcnf PATH]
//     Emits the Step 1-4 Weighted Partial MaxSAT instance in standard
//     WCNF with an event-variable map in the comment header, for
//     external MaxSAT solvers ('-' or no --wcnf = stdout).
//
//   usage: mpmcs4fta_cli serve [options]
//     Long-running analysis service (src/service): POST /v1/solve and
//     /v1/topk with the batch JSON schema, the /v1/trees mutable-resource
//     API, GET /v1/healthz and /v1/statsz.
//     --port P        listen port (default 8080; 0 = ephemeral)
//     --bind ADDR     bind address (default 127.0.0.1)
//     --journal-dir DIR  crash-safe /v1/trees persistence (replayed on boot)
//     --no-journal-fsync journal without per-record durability (tests only)
//     --failpoints SPEC  arm fault-injection sites; also honours the
//                        FTA_FAILPOINTS environment variable
//     plus --jobs and every pipeline option above as service defaults.
//
//   usage: mpmcs4fta_cli mutate [options] <tree.ft> --edits <script.json>
//     Replays a JSON edit script against the tree as one mutable engine
//     resource: each step is a TreeDelta (an array of op objects, the
//     PATCH /v1/trees wire form); the tool reports per-edit re-solve
//     latency and how much of the solver artefact survived each edit
//     (weight-only reweighting, session rebases, strata reused vs
//     re-prepared).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "engine/analysis_engine.hpp"
#include "format/format.hpp"
#include "format/wcnf_export.hpp"
#include "ft/dot_writer.hpp"
#include "ft/openpsa.hpp"
#include "ft/parser.hpp"
#include "ft/tree_delta.hpp"
#include "service/http_server.hpp"
#include "service/solve_service.hpp"
#include "util/failpoint.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [options] <tree.ft>\n"
               "       %s [options] --batch <dir>\n"
               "  --solver NAME   portfolio|oll|fu-malik|lsu|brute|"
               "stratified\n"
               "  --top K         report the K most probable MCSs\n"
               "  --json PATH     write JSON result ('-' = stdout)\n"
               "  --dot PATH      write Graphviz with MPMCS highlighted\n"
               "  --scale S       weight scale (default 1e6)\n"
               "  --card-lowering MODE  vote-gate encoding: expand|totalizer|"
               "auto\n"
               "  --sat-structure MODE  gate-map SAT hints: off|hints|full\n"
               "  --no-preprocess skip the Step 3.5 WCNF simplification\n"
               "  --no-incremental stateless solving (no SAT sessions)\n"
               "  --no-hedge      don't race the raw instance against the\n"
               "                  preprocessed one in portfolio solves\n"
               "  --timeout SEC   per-tree time limit\n"
               "  --format F      input format: auto (default) | json |\n"
               "                  galileo | openpsa\n"
               "  --mission-time T  horizon for Galileo lambda= events\n"
               "                  (p = 1 - exp(-lambda*T); default 1)\n"
               "  --batch DIR     analyse every tree file in DIR\n"
               "  --jobs N        batch worker threads\n"
               "  --quiet         no human-readable summary\n"
               "export-wcnf mode: %s export-wcnf [options] <tree> "
               "[--wcnf PATH]\n"
               "  emit the Step 1-4 Weighted Partial MaxSAT instance with an\n"
               "  event-variable map in the comment header ('-' = stdout)\n"
               "serve mode: %s serve [--port P] [--bind ADDR] [options]\n"
               "  long-running HTTP service: POST /v1/solve, POST /v1/topk,\n"
               "  the /v1/trees resource API, GET /v1/healthz, GET /v1/readyz,\n"
               "  GET /v1/statsz\n"
               "  --journal-dir DIR  crash-safe /v1/trees persistence: every\n"
               "                  acknowledged create/patch/delete is journaled\n"
               "                  and replayed on the next boot\n"
               "  --no-journal-fsync  journal without per-record durability\n"
               "  --failpoints SPEC  arm fault-injection sites (also env\n"
               "                  FTA_FAILPOINTS); needs -DMPMCS_FAILPOINTS=ON\n"
               "mutate mode: %s mutate [options] <tree.ft> --edits "
               "<script.json>\n"
               "  replay a JSON edit script (array of TreeDeltas) against\n"
               "  the tree, reporting per-edit re-solve latency + lineage\n",
               argv0, argv0, argv0, argv0, argv0);
  return 2;
}

/// Format selection shared by every mode (--format / --mission-time).
fta::format::ParseOptions g_parse_opts;

fta::ft::FaultTree parse_tree_text(const std::string& text,
                                   const std::string& filename = "") {
  return fta::format::parse_tree(text, g_parse_opts, filename);
}

bool is_tree_file(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".ft" || ext == ".dft" || ext == ".xml" || ext == ".opsa" ||
         ext == ".mef" || ext == ".json";
}

std::string cut_to_json_array(const std::vector<std::string>& event_names,
                              const fta::ft::CutSet& cut) {
  std::string out = "[";
  bool sep = false;
  for (const fta::ft::EventIndex e : cut.events()) {
    if (sep) out += ", ";
    out += '"' + fta::util::json_escape(event_names.at(e)) + '"';
    sep = true;
  }
  return out + "]";
}

std::string cut_to_string(const std::vector<std::string>& event_names,
                          const fta::ft::CutSet& cut) {
  std::string out = "{";
  bool sep = false;
  for (const fta::ft::EventIndex e : cut.events()) {
    if (sep) out += ", ";
    out += event_names.at(e);
    sep = true;
  }
  return out + "}";
}

/// Runs --batch mode: every tree file in `dir` through the engine.
int run_batch(const std::string& dir, std::size_t jobs,
              const fta::core::PipelineOptions& opts, std::size_t top_k,
              const std::string& json_path, bool quiet) {
  namespace fs = std::filesystem;
  using namespace fta;

  std::vector<fs::path> files;
  try {
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
      if (entry.is_regular_file() && is_tree_file(entry.path())) {
        files.push_back(entry.path());
      }
    }
    if (ec) throw fs::filesystem_error("cannot read directory", dir, ec);
  } catch (const fs::filesystem_error& e) {
    // Construction *and* iteration can fail (e.g. the directory mutating
    // underneath us); neither should take the process down.
    std::fprintf(stderr, "cannot read directory %s: %s\n", dir.c_str(),
                 e.what());
    return 1;
  }
  if (files.empty()) {
    std::fprintf(stderr,
                 "no tree files (*.ft, *.dft, *.xml, *.opsa, *.json) in %s\n",
                 dir.c_str());
    return 1;
  }
  std::sort(files.begin(), files.end());

  // Parse up front; parse failures become failed results, not a dead batch.
  std::vector<engine::AnalysisRequest> requests;
  std::vector<std::pair<std::string, std::string>> parse_failures;
  std::vector<const ft::FaultTree*> trees_by_request;
  for (const auto& file : files) {
    std::ifstream in(file);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    try {
      engine::AnalysisRequest req;
      req.id = file.filename().string();
      req.tree = parse_tree_text(buffer.str(), file.string());
      req.kind = top_k > 0 ? engine::AnalysisKind::TopK
                           : engine::AnalysisKind::Mpmcs;
      req.top_k = top_k;
      req.pipeline = opts;
      req.timeout_seconds = opts.timeout_seconds;
      requests.push_back(std::move(req));
    } catch (const std::exception& e) {
      parse_failures.emplace_back(file.filename().string(), e.what());
    }
  }
  // The requests own their trees; only the event names are needed for the
  // report below (run_batch preserves submission order).
  std::vector<std::vector<std::string>> event_names;
  event_names.reserve(requests.size());
  for (const auto& req : requests) {
    std::vector<std::string> names;
    names.reserve(req.tree.num_events());
    for (ft::EventIndex e = 0; e < req.tree.num_events(); ++e) {
      names.push_back(req.tree.event(e).name);
    }
    event_names.push_back(std::move(names));
  }

  engine::EngineOptions eopts;
  eopts.num_threads = jobs;
  engine::AnalysisEngine eng(eopts);

  util::Timer wall;
  const auto results = eng.run_batch(std::move(requests));
  const double seconds = wall.seconds();
  const engine::EngineStats stats = eng.stats();

  std::size_t ok = 0, cancelled = 0, failed = parse_failures.size();
  for (const auto& r : results) {
    if (r.ok) ++ok;
    else if (r.cancelled) ++cancelled;
    else ++failed;
  }

  if (!quiet) {
    std::printf("batch     : %s (%zu trees, %zu jobs)\n", dir.c_str(),
                results.size() + parse_failures.size(), eng.num_threads());
    std::printf("ok        : %zu  (cancelled %zu, failed %zu)\n", ok,
                cancelled, failed);
    std::printf("cache     : %llu hits / %llu misses\n",
                static_cast<unsigned long long>(stats.cache_hits),
                static_cast<unsigned long long>(stats.cache_misses));
    std::printf("throughput: %.1f trees/s  (%.2f s wall)\n",
                seconds > 0.0 ? results.size() / seconds : 0.0, seconds);
    for (std::size_t i = 0; i < results.size(); ++i) {
      const engine::AnalysisResult& r = results[i];
      if (!r.ok) {
        std::printf("  %-28s %s\n", r.id.c_str(),
                    r.cancelled ? "[cancelled]" : r.error.c_str());
        continue;
      }
      if (r.kind == engine::AnalysisKind::TopK && r.top.empty()) {
        std::printf("  %-28s no minimal cut sets\n", r.id.c_str());
        continue;
      }
      const core::MpmcsSolution& sol =
          r.kind == engine::AnalysisKind::TopK ? r.top.front() : r.mpmcs;
      std::printf("  %-28s P = %-12g %s%s\n", r.id.c_str(), sol.probability,
                  cut_to_string(event_names[i], sol.cut).c_str(),
                  r.cache_hit ? "  [cached]" : "");
    }
    for (const auto& [file, error] : parse_failures) {
      std::printf("  %-28s parse error: %s\n", file.c_str(), error.c_str());
    }
  }

  if (!json_path.empty()) {
    std::string json = "{\n  \"batch\": {\n";
    json += "    \"directory\": \"" + util::json_escape(dir) + "\",\n";
    json += "    \"jobs\": " + std::to_string(eng.num_threads()) + ",\n";
    json += "    \"trees\": " +
            std::to_string(results.size() + parse_failures.size()) + ",\n";
    json += "    \"ok\": " + std::to_string(ok) + ",\n";
    json += "    \"cancelled\": " + std::to_string(cancelled) + ",\n";
    json += "    \"failed\": " + std::to_string(failed) + ",\n";
    json += "    \"cacheHits\": " + std::to_string(stats.cache_hits) + ",\n";
    json += "    \"seconds\": " + util::format_double(seconds) + ",\n";
    json += "    \"treesPerSecond\": " +
            util::format_double(seconds > 0.0 ? results.size() / seconds
                                              : 0.0) +
            "\n  },\n  \"results\": [";
    bool sep = false;
    for (std::size_t i = 0; i < results.size(); ++i) {
      const engine::AnalysisResult& r = results[i];
      json += sep ? ",\n    {" : "\n    {";
      sep = true;
      json += "\"file\": \"" + util::json_escape(r.id) + "\", ";
      json += std::string("\"ok\": ") + (r.ok ? "true" : "false") + ", ";
      if (!r.ok) {
        json += r.cancelled
                    ? std::string("\"cancelled\": true}")
                    : "\"error\": \"" + util::json_escape(r.error) + "\"}";
        continue;
      }
      json += std::string("\"cacheHit\": ") +
              (r.cache_hit ? "true" : "false") + ", ";
      json += std::string("\"memoized\": ") +
              (r.memoized ? "true" : "false") + ", ";
      json += "\"seconds\": " + util::format_double(r.seconds) + ", ";
      // Solver-member attribution: which portfolio member produced the
      // winning model and from which artefact lineage (raw / pre /
      // strata). Memoized repeats replay the stored solution, so the
      // attribution is stable across identical requests.
      const auto solution_json = [&](const core::MpmcsSolution& sol) {
        return "{\"probability\": " + util::format_double(sol.probability) +
               ", \"logCost\": " + util::format_double(sol.log_cost) +
               ", \"solver\": \"" + util::json_escape(sol.solver_name) +
               "\", \"lineage\": \"" + util::json_escape(sol.lineage) +
               "\", \"satDecisions\": " + std::to_string(sol.sat_decisions) +
               ", \"satPropagations\": " +
               std::to_string(sol.sat_propagations) +
               ", \"satConflicts\": " + std::to_string(sol.sat_conflicts) +
               ", \"satBinaryPropagations\": " +
               std::to_string(sol.sat_binary_propagations) +
               ", \"mpmcs\": " + cut_to_json_array(event_names[i], sol.cut) +
               "}";
      };
      if (r.kind == engine::AnalysisKind::TopK) {
        json += "\"top\": [";
        for (std::size_t k = 0; k < r.top.size(); ++k) {
          if (k > 0) json += ", ";
          json += solution_json(r.top[k]);
        }
        json += "]}";
      } else {
        json += "\"solution\": " + solution_json(r.mpmcs) + "}";
      }
    }
    for (const auto& [file, error] : parse_failures) {
      json += sep ? ",\n    {" : "\n    {";
      sep = true;
      json += "\"file\": \"" + util::json_escape(file) +
              "\", \"ok\": false, \"error\": \"" + util::json_escape(error) +
              "\"}";
    }
    json += "\n  ]\n}\n";
    if (json_path == "-") {
      std::fputs(json.c_str(), stdout);
    } else {
      std::ofstream out(json_path);
      out << json;
      if (!quiet) std::printf("JSON      : %s\n", json_path.c_str());
    }
  }
  // Any tree that could not be parsed or solved sinks the exit status —
  // timeouts/cancellations included — so CI and scripts can gate on the
  // batch without grepping the JSON summary.
  return failed == 0 && cancelled == 0 ? 0 : 1;
}

/// One human-readable tag per edit describing what the patch path did.
std::string lineage_tag(const fta::engine::AnalysisResult& r) {
  if (!r.delta_applied) return "no-delta";
  const fta::core::DeltaApplication& d = r.delta;
  if (d.reprepared) return "re-prepared";
  std::string tag = d.weight_only ? "weight-only" : "structural";
  if (d.session_rebased) tag += ", session rebased";
  if (d.strata_total > 0) {
    tag += ", strata " + std::to_string(d.strata_reused) + "r/" +
           std::to_string(d.strata_reweighted) + "w/" +
           std::to_string(d.strata_reprepared) + "p of " +
           std::to_string(d.strata_total);
  }
  return tag;
}

/// Runs `mutate` mode: replays the edit script against the tree held as
/// one mutable engine resource, measuring each re-solve.
int run_mutate(const std::string& tree_path, const std::string& edits_path,
               std::size_t jobs, const fta::core::PipelineOptions& opts,
               const std::string& json_path, bool quiet) {
  using namespace fta;

  std::ifstream in(tree_path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", tree_path.c_str());
    return 1;
  }
  ft::FaultTree tree;
  try {
    std::ostringstream buffer;
    buffer << in.rdbuf();
    tree = parse_tree_text(buffer.str(), tree_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", tree_path.c_str(), e.what());
    return 1;
  }

  std::ifstream edits_in(edits_path);
  if (!edits_in) {
    std::fprintf(stderr, "cannot open %s\n", edits_path.c_str());
    return 1;
  }
  std::vector<ft::TreeDelta> steps;
  try {
    std::ostringstream buffer;
    buffer << edits_in.rdbuf();
    const util::JsonValue doc = util::JsonValue::parse(buffer.str());
    if (!doc.is_array()) {
      throw std::runtime_error(
          "edit script must be a JSON array of deltas "
          "(each itself an array of op objects)");
    }
    for (const util::JsonValue& step : doc.items()) {
      steps.push_back(ft::parse_tree_delta(step));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", edits_path.c_str(), e.what());
    return 1;
  }

  engine::EngineOptions eopts;
  eopts.num_threads = jobs;
  engine::AnalysisEngine eng(eopts);

  util::Timer prepare_timer;
  std::string id;
  try {
    id = eng.create_tree(tree, opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", tree_path.c_str(), e.what());
    return 1;
  }
  const double prepare_seconds = prepare_timer.seconds();

  const auto solve_once = [&](std::optional<ft::TreeDelta> delta) {
    engine::AnalysisRequest req;
    req.id = tree_path;
    req.tree_id = id;
    req.kind = engine::AnalysisKind::Mpmcs;
    req.pipeline = opts;
    req.timeout_seconds = opts.timeout_seconds;
    req.delta = std::move(delta);
    return eng.submit(std::move(req)).get();
  };
  const auto names_now = [&] {
    std::vector<std::string> names;
    if (const auto snap = eng.tree_snapshot(id)) {
      names.reserve(snap->num_events());
      for (ft::EventIndex e = 0; e < snap->num_events(); ++e) {
        names.push_back(snap->event(e).name);
      }
    }
    return names;
  };

  util::Timer initial_timer;
  const engine::AnalysisResult initial = solve_once(std::nullopt);
  const double initial_seconds = initial_timer.seconds();
  if (!initial.ok) {
    std::fprintf(stderr, "initial solve failed: %s\n",
                 initial.cancelled ? "cancelled" : initial.error.c_str());
    return 1;
  }

  struct StepOutcome {
    double seconds = 0.0;
    engine::AnalysisResult result;
    std::vector<std::string> names;
  };
  std::vector<StepOutcome> outcomes;
  outcomes.reserve(steps.size());
  std::size_t failed = 0;
  for (ft::TreeDelta& step : steps) {
    StepOutcome o;
    util::Timer timer;
    o.result = solve_once(std::move(step));
    o.seconds = timer.seconds();
    o.names = names_now();
    if (!o.result.ok) ++failed;
    outcomes.push_back(std::move(o));
  }

  if (!quiet) {
    std::printf("tree      : %s (%zu events, %zu gates)\n", tree_path.c_str(),
                tree.stats().events, tree.stats().gates);
    std::printf("resource  : %s  (prepare %.2f ms, initial solve %.2f ms)\n",
                id.c_str(), prepare_seconds * 1e3, initial_seconds * 1e3);
    std::printf("edits     : %zu steps from %s\n", steps.size(),
                edits_path.c_str());
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      const StepOutcome& o = outcomes[i];
      if (!o.result.ok) {
        std::printf("  edit %-3zu %7.2f ms  FAILED: %s\n", i + 1,
                    o.seconds * 1e3,
                    o.result.cancelled ? "cancelled" : o.result.error.c_str());
        continue;
      }
      std::printf("  edit %-3zu %7.2f ms  [%s]  P = %-12g %s\n", i + 1,
                  o.seconds * 1e3, lineage_tag(o.result).c_str(),
                  o.result.mpmcs.probability,
                  cut_to_string(o.names, o.result.mpmcs.cut).c_str());
    }
  }

  if (!json_path.empty()) {
    const auto solution_json = [](const std::vector<std::string>& names,
                                  const core::MpmcsSolution& sol) {
      return "{\"probability\": " + util::format_double(sol.probability) +
             ", \"logCost\": " + util::format_double(sol.log_cost) +
             ", \"solver\": \"" + util::json_escape(sol.solver_name) +
             "\", \"lineage\": \"" + util::json_escape(sol.lineage) +
             "\", \"mpmcs\": " + cut_to_json_array(names, sol.cut) + "}";
    };
    std::vector<std::string> initial_names;
    initial_names.reserve(tree.num_events());
    for (ft::EventIndex e = 0; e < tree.num_events(); ++e) {
      initial_names.push_back(tree.event(e).name);
    }
    std::string json = "{\n  \"mutate\": {\n";
    json += "    \"tree\": \"" + util::json_escape(tree_path) + "\",\n";
    json += "    \"edits\": " + std::to_string(steps.size()) + ",\n";
    json += "    \"failed\": " + std::to_string(failed) + ",\n";
    json += "    \"prepareSeconds\": " + util::format_double(prepare_seconds) +
            ",\n";
    json += "    \"initialSolveSeconds\": " +
            util::format_double(initial_seconds) + "\n  },\n";
    json += "  \"initial\": " +
            solution_json(initial_names, initial.mpmcs) + ",\n";
    json += "  \"steps\": [";
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      const StepOutcome& o = outcomes[i];
      json += i > 0 ? ",\n    {" : "\n    {";
      json += "\"index\": " + std::to_string(i + 1) + ", ";
      json += "\"seconds\": " + util::format_double(o.seconds) + ", ";
      json += std::string("\"ok\": ") + (o.result.ok ? "true" : "false");
      if (!o.result.ok) {
        json += ", \"error\": \"" +
                util::json_escape(o.result.cancelled ? "cancelled"
                                                     : o.result.error) +
                "\"}";
        continue;
      }
      const core::DeltaApplication& d = o.result.delta;
      json += ", \"version\": " + std::to_string(o.result.tree_version);
      json += std::string(", \"deltaApplied\": ") +
              (o.result.delta_applied ? "true" : "false");
      json += std::string(", \"weightOnly\": ") +
              (d.weight_only ? "true" : "false");
      json += std::string(", \"sessionRebased\": ") +
              (d.session_rebased ? "true" : "false");
      json += std::string(", \"reprepared\": ") +
              (d.reprepared ? "true" : "false");
      json += ", \"strataTotal\": " + std::to_string(d.strata_total);
      json += ", \"strataReused\": " + std::to_string(d.strata_reused);
      json += ", \"strataReweighted\": " +
              std::to_string(d.strata_reweighted);
      json += ", \"strataReprepared\": " +
              std::to_string(d.strata_reprepared);
      json += ", \"solution\": " + solution_json(o.names, o.result.mpmcs);
      json += "}";
    }
    json += "\n  ]\n}\n";
    if (json_path == "-") {
      std::fputs(json.c_str(), stdout);
    } else {
      std::ofstream out(json_path);
      out << json;
      if (!quiet) std::printf("JSON      : %s\n", json_path.c_str());
    }
  }
  return failed == 0 ? 0 : 1;
}

std::atomic<bool> g_stop_requested{false};

void handle_stop_signal(int) { g_stop_requested.store(true); }

/// Runs `serve` mode until SIGINT/SIGTERM, then drains gracefully.
int run_serve(const std::string& bind_address, std::uint16_t port,
              std::size_t jobs, const fta::core::PipelineOptions& opts,
              const std::string& journal_dir, bool journal_fsync,
              bool quiet) {
  using namespace fta;
  service::ServiceOptions sopts;
  sopts.engine_threads = jobs;
  sopts.pipeline = opts;
  sopts.journal_dir = journal_dir;
  sopts.journal_fsync = journal_fsync;
  service::SolveService svc(sopts);

  service::HttpServerOptions hopts;
  hopts.bind_address = bind_address;
  hopts.port = port;
  std::unique_ptr<service::HttpServer> server;
  try {
    server = std::make_unique<service::HttpServer>(
        hopts, [&svc](const service::HttpRequest& request) {
          return svc.handle(request);
        });
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cannot start server: %s\n", e.what());
    return 1;
  }

  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
  if (!quiet) {
    std::printf("serving   : http://%s:%u (threads %zu)\n",
                bind_address.c_str(), server->port(),
                svc.engine().num_threads());
    if (!journal_dir.empty()) {
      std::printf("journal   : %s (fsync %s)\n", journal_dir.c_str(),
                  journal_fsync ? "on" : "off");
    }
    std::fflush(stdout);
  }
  while (!g_stop_requested.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  // Drain order matters: refuse new solves first, then let the HTTP layer
  // finish in-flight exchanges before sockets close.
  svc.begin_shutdown();
  server->shutdown();
  if (!quiet) {
    std::printf("final stats:\n%s", svc.statsz_json().c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fta;

  core::PipelineOptions opts;
  std::string tree_path;
  std::string batch_dir;
  std::string json_path;
  std::string dot_path;
  std::string wcnf_path;
  std::string edits_path;
  std::size_t top_k = 0;
  std::size_t jobs = 0;
  bool quiet = false;
  bool serve_mode = false;
  bool mutate_mode = false;
  bool export_mode = false;
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 8080;
  std::string journal_dir;
  bool journal_fsync = true;
  std::string failpoints_spec;
  if (const char* env = std::getenv("FTA_FAILPOINTS")) {
    failpoints_spec = env;
  }

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--solver") {
      const std::string name = next();
      if (name == "portfolio") opts.solver = core::SolverChoice::Portfolio;
      else if (name == "oll") opts.solver = core::SolverChoice::Oll;
      else if (name == "fu-malik") opts.solver = core::SolverChoice::FuMalik;
      else if (name == "lsu") opts.solver = core::SolverChoice::Lsu;
      else if (name == "brute") opts.solver = core::SolverChoice::BruteForce;
      else if (name == "stratified")
        opts.solver = core::SolverChoice::Stratified;
      else return usage(argv[0]);
    } else if (arg == "--top") {
      top_k = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--dot") {
      dot_path = next();
    } else if (arg == "--wcnf") {
      wcnf_path = next();
    } else if (arg == "--scale") {
      opts.weight_scale = std::strtod(next(), nullptr);
    } else if (arg == "--card-lowering") {
      const std::string mode = next();
      if (mode == "expand") {
        opts.card_lowering = logic::CardinalityLowering::Expand;
      } else if (mode == "totalizer") {
        opts.card_lowering = logic::CardinalityLowering::Totalizer;
      } else if (mode == "auto") {
        opts.card_lowering = logic::CardinalityLowering::Auto;
      } else {
        return usage(argv[0]);
      }
    } else if (arg == "--sat-structure") {
      const std::string mode = next();
      if (mode == "off") {
        opts.sat_structure = logic::StructureMode::Off;
      } else if (mode == "hints") {
        opts.sat_structure = logic::StructureMode::Hints;
      } else if (mode == "full") {
        opts.sat_structure = logic::StructureMode::Full;
      } else {
        return usage(argv[0]);
      }
    } else if (arg == "--no-preprocess") {
      opts.preprocess = false;
    } else if (arg == "--no-incremental") {
      opts.incremental = false;
    } else if (arg == "--no-hedge") {
      opts.hedge_raw = false;
    } else if (arg == "--timeout") {
      opts.timeout_seconds = std::strtod(next(), nullptr);
    } else if (arg == "--batch") {
      batch_dir = next();
    } else if (arg == "--jobs") {
      jobs = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--port") {
      port = static_cast<std::uint16_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--bind") {
      bind_address = next();
    } else if (arg == "--journal-dir") {
      journal_dir = next();
    } else if (arg == "--no-journal-fsync") {
      journal_fsync = false;
    } else if (arg == "--failpoints") {
      // CLI overrides the FTA_FAILPOINTS environment variable.
      failpoints_spec = next();
    } else if (arg == "--edits") {
      edits_path = next();
    } else if (arg == "--format") {
      if (!fta::format::parse_format_name(next(), &g_parse_opts.format)) {
        std::fprintf(stderr,
                     "--format must be auto, json, galileo, or openpsa\n");
        return 2;
      }
    } else if (arg == "--mission-time") {
      g_parse_opts.mission_time = std::strtod(next(), nullptr);
      if (!(g_parse_opts.mission_time > 0)) {
        std::fprintf(stderr, "--mission-time must be positive\n");
        return 2;
      }
    } else if (arg == "serve" && tree_path.empty() && !mutate_mode &&
               !export_mode) {
      serve_mode = true;
    } else if (arg == "mutate" && tree_path.empty() && !serve_mode &&
               !export_mode) {
      mutate_mode = true;
    } else if (arg == "export-wcnf" && tree_path.empty() && !serve_mode &&
               !mutate_mode) {
      export_mode = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      tree_path = arg;
    }
  }
  if (!failpoints_spec.empty()) {
    try {
      util::configure_failpoints(failpoints_spec);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bad failpoint spec: %s\n", e.what());
      return 2;
    }
  }
  if (serve_mode) {
    if (!tree_path.empty() || !batch_dir.empty()) return usage(argv[0]);
    return run_serve(bind_address, port, jobs, opts, journal_dir,
                     journal_fsync, quiet);
  }
  if (mutate_mode) {
    if (tree_path.empty() || edits_path.empty() || !batch_dir.empty()) {
      return usage(argv[0]);
    }
    return run_mutate(tree_path, edits_path, jobs, opts, json_path, quiet);
  }
  if (!edits_path.empty()) {
    std::fprintf(stderr, "--edits requires the mutate subcommand\n");
    return 2;
  }
  if (export_mode && (tree_path.empty() || !batch_dir.empty())) {
    return usage(argv[0]);
  }
  if (!batch_dir.empty()) {
    if (!tree_path.empty()) return usage(argv[0]);
    if (!dot_path.empty() || !wcnf_path.empty()) {
      std::fprintf(stderr, "--dot/--wcnf are single-tree options and do not "
                           "combine with --batch\n");
      return 2;
    }
    return run_batch(batch_dir, jobs, opts, top_k, json_path, quiet);
  }
  if (tree_path.empty()) return usage(argv[0]);

  std::ifstream in(tree_path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", tree_path.c_str());
    return 1;
  }

  ft::FaultTree tree;
  try {
    std::ostringstream buffer;
    buffer << in.rdbuf();
    tree = parse_tree_text(buffer.str(), tree_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", tree_path.c_str(), e.what());
    return 1;
  }

  if (export_mode) {
    const std::string wcnf = format::export_wcnf(tree, opts);
    if (wcnf_path.empty() || wcnf_path == "-") {
      std::fputs(wcnf.c_str(), stdout);
    } else {
      std::ofstream out(wcnf_path);
      out << wcnf;
      if (!quiet) std::printf("WCNF      : %s\n", wcnf_path.c_str());
    }
    return 0;
  }

  const core::MpmcsPipeline pipeline(opts);
  const core::MpmcsSolution sol = pipeline.solve(tree);
  if (sol.status != maxsat::MaxSatStatus::Optimal) {
    std::fprintf(stderr, "no optimal solution (status %d)\n",
                 static_cast<int>(sol.status));
    return 1;
  }

  if (!quiet) {
    std::printf("tree      : %s (%zu events, %zu gates)\n", tree_path.c_str(),
                tree.stats().events, tree.stats().gates);
    std::printf("MPMCS     : %s\n", sol.cut.to_string(tree).c_str());
    std::printf("P(MPMCS)  : %g\n", sol.probability);
    std::printf("solver    : %s  [%s]  (%.2f ms)\n", sol.solver_name.c_str(),
                sol.lineage.c_str(), sol.solve_seconds * 1e3);
    if (top_k > 0) {
      std::printf("top %zu MCSs:\n", top_k);
      for (const auto& s : pipeline.top_k(tree, top_k)) {
        std::printf("  P = %-10g %s\n", s.probability,
                    s.cut.to_string(tree).c_str());
      }
    }
  }

  if (!json_path.empty()) {
    const std::string json = core::MpmcsPipeline::to_json(tree, sol);
    if (json_path == "-") {
      std::fputs(json.c_str(), stdout);
    } else {
      std::ofstream out(json_path);
      out << json;
      if (!quiet) std::printf("JSON      : %s\n", json_path.c_str());
    }
  }
  if (!dot_path.empty()) {
    std::ofstream out(dot_path);
    out << ft::to_dot(tree, sol.cut);
    if (!quiet) std::printf("DOT       : %s\n", dot_path.c_str());
  }
  if (!wcnf_path.empty()) {
    std::ofstream out(wcnf_path);
    out << format::export_wcnf(tree, pipeline);
    if (!quiet) std::printf("WCNF      : %s\n", wcnf_path.c_str());
  }
  return 0;
}
