// mpmcs4fta_cli: command-line MPMCS computation, mirroring the paper's
// open-source tool (command line in, JSON out; Fig. 2 of the paper shows
// that JSON rendered in a browser).
//
//   usage: mpmcs4fta_cli [options] <tree.ft>
//     --solver NAME   portfolio (default) | oll | fu-malik | lsu | brute
//     --top K         also report the K most probable MCSs
//     --json PATH     write the JSON result document ('-' for stdout)
//     --dot PATH      write Graphviz with the MPMCS highlighted
//     --wcnf PATH     export the Step-4 Weighted Partial MaxSAT instance
//                     in standard WCNF (for external MaxSAT solvers)
//     --scale S       weight scaling factor (default 1e6)
//     --timeout SEC   portfolio wall-clock cap
//     --quiet         suppress the human-readable summary
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <iostream>
#include <string>

#include "core/pipeline.hpp"
#include "ft/dot_writer.hpp"
#include "ft/openpsa.hpp"
#include "ft/parser.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [options] <tree.ft>\n"
               "  --solver NAME   portfolio|oll|fu-malik|lsu|brute\n"
               "  --top K         report the K most probable MCSs\n"
               "  --json PATH     write JSON result ('-' = stdout)\n"
               "  --dot PATH      write Graphviz with MPMCS highlighted\n"
               "  --scale S       weight scale (default 1e6)\n"
               "  --timeout SEC   portfolio time limit\n"
               "  --quiet         no human-readable summary\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fta;

  core::PipelineOptions opts;
  std::string tree_path;
  std::string json_path;
  std::string dot_path;
  std::string wcnf_path;
  std::size_t top_k = 0;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--solver") {
      const std::string name = next();
      if (name == "portfolio") opts.solver = core::SolverChoice::Portfolio;
      else if (name == "oll") opts.solver = core::SolverChoice::Oll;
      else if (name == "fu-malik") opts.solver = core::SolverChoice::FuMalik;
      else if (name == "lsu") opts.solver = core::SolverChoice::Lsu;
      else if (name == "brute") opts.solver = core::SolverChoice::BruteForce;
      else return usage(argv[0]);
    } else if (arg == "--top") {
      top_k = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--dot") {
      dot_path = next();
    } else if (arg == "--wcnf") {
      wcnf_path = next();
    } else if (arg == "--scale") {
      opts.weight_scale = std::strtod(next(), nullptr);
    } else if (arg == "--timeout") {
      opts.timeout_seconds = std::strtod(next(), nullptr);
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      tree_path = arg;
    }
  }
  if (tree_path.empty()) return usage(argv[0]);

  std::ifstream in(tree_path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", tree_path.c_str());
    return 1;
  }

  ft::FaultTree tree;
  try {
    // Auto-detect format: Open-PSA MEF documents start with '<'.
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    const auto first = text.find_first_not_of(" \t\r\n");
    if (first != std::string::npos && text[first] == '<') {
      tree = ft::parse_open_psa(text);
    } else {
      tree = ft::parse_fault_tree(text);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", tree_path.c_str(), e.what());
    return 1;
  }

  const core::MpmcsPipeline pipeline(opts);
  const core::MpmcsSolution sol = pipeline.solve(tree);
  if (sol.status != maxsat::MaxSatStatus::Optimal) {
    std::fprintf(stderr, "no optimal solution (status %d)\n",
                 static_cast<int>(sol.status));
    return 1;
  }

  if (!quiet) {
    std::printf("tree      : %s (%zu events, %zu gates)\n", tree_path.c_str(),
                tree.stats().events, tree.stats().gates);
    std::printf("MPMCS     : %s\n", sol.cut.to_string(tree).c_str());
    std::printf("P(MPMCS)  : %g\n", sol.probability);
    std::printf("solver    : %s  (%.2f ms)\n", sol.solver_name.c_str(),
                sol.solve_seconds * 1e3);
    if (top_k > 0) {
      std::printf("top %zu MCSs:\n", top_k);
      for (const auto& s : pipeline.top_k(tree, top_k)) {
        std::printf("  P = %-10g %s\n", s.probability,
                    s.cut.to_string(tree).c_str());
      }
    }
  }

  if (!json_path.empty()) {
    const std::string json = core::MpmcsPipeline::to_json(tree, sol);
    if (json_path == "-") {
      std::fputs(json.c_str(), stdout);
    } else {
      std::ofstream out(json_path);
      out << json;
      if (!quiet) std::printf("JSON      : %s\n", json_path.c_str());
    }
  }
  if (!dot_path.empty()) {
    std::ofstream out(dot_path);
    out << ft::to_dot(tree, sol.cut);
    if (!quiet) std::printf("DOT       : %s\n", dot_path.c_str());
  }
  if (!wcnf_path.empty()) {
    std::ofstream out(wcnf_path);
    maxsat::write_wcnf(out, pipeline.build_instance(tree),
                       "mpmcs4fta instance for " + tree_path);
    if (!quiet) std::printf("WCNF      : %s\n", wcnf_path.c_str());
  }
  return 0;
}
