// Railway interlocking safety study: the "advanced analysis" example.
//
// Beyond the MPMCS itself, this example exercises the extended analysis
// battery on a signalling scenario: common-cause failure groups (both
// interlocking channels share a power bus and a software base), Monte
// Carlo uncertainty on the failure-rate estimates, modularization, and
// minimal path sets (which components, kept healthy, keep trains safe).
//
//   $ ./railway_interlocking
#include <cstdio>

#include "analysis/ccf.hpp"
#include "analysis/modules.hpp"
#include "analysis/quantitative.hpp"
#include "analysis/uncertainty.hpp"
#include "bdd/fta_bdd.hpp"
#include "core/pipeline.hpp"
#include "ft/builder.hpp"

int main() {
  using namespace fta;

  // Top event: a conflicting movement authority is issued.
  ft::FaultTreeBuilder b;
  // Redundant two-channel interlocking: both channels must fail.
  const auto ch_a_hw = b.event("channel_a_hw", 0.004);
  const auto ch_a_sw = b.event("channel_a_sw", 0.006);
  const auto ch_b_hw = b.event("channel_b_hw", 0.004);
  const auto ch_b_sw = b.event("channel_b_sw", 0.006);
  const auto ch_a = b.or_("CHANNEL_A", {ch_a_hw, ch_a_sw});
  const auto ch_b = b.or_("CHANNEL_B", {ch_b_hw, ch_b_sw});
  const auto logic_fail = b.and_("INTERLOCKING_LOGIC", {ch_a, ch_b});

  // Track-side: point machine feedback 2-of-3 sensors.
  const auto s1 = b.event("point_sensor_1", 0.02);
  const auto s2 = b.event("point_sensor_2", 0.02);
  const auto s3 = b.event("point_sensor_3", 0.02);
  const auto feedback = b.vote("POINT_FEEDBACK_2oo3", 2, {s1, s2, s3});

  // Human/procedural layer: manual override misuse under degraded mode.
  const auto override_misuse = b.event("manual_override_misuse", 0.008);

  b.top(b.or_("CONFLICTING_AUTHORITY",
              {logic_fail, feedback, override_misuse}));
  const ft::FaultTree nominal = std::move(b).build();

  std::printf("Railway interlocking: %zu events, %zu gates\n\n",
              nominal.stats().events, nominal.stats().gates);

  // --- nominal analysis -------------------------------------------------
  core::MpmcsPipeline pipeline;
  const auto nominal_sol = pipeline.solve(nominal);
  std::printf("nominal MPMCS     : %s (P = %g)\n",
              nominal_sol.cut.to_string(nominal).c_str(),
              nominal_sol.probability);
  std::printf("nominal P(top)    : %g\n\n",
              analysis::top_event_probability(nominal));

  // --- common-cause failures --------------------------------------------
  // Both software channels run on the same codebase (beta = 0.25); both
  // hardware channels share a power bus (beta = 0.1).
  std::vector<analysis::CcfGroup> groups;
  groups.push_back({"shared_codebase",
                    {nominal.node(ch_a_sw).event_index,
                     nominal.node(ch_b_sw).event_index},
                    0.25});
  groups.push_back({"shared_power",
                    {nominal.node(ch_a_hw).event_index,
                     nominal.node(ch_b_hw).event_index},
                    0.10});
  const ft::FaultTree ccf = analysis::apply_beta_factor(nominal, groups);
  const auto ccf_sol = pipeline.solve(ccf);
  std::printf("with CCF, MPMCS   : %s (P = %g)\n",
              ccf_sol.cut.to_string(ccf).c_str(), ccf_sol.probability);
  std::printf("with CCF, P(top)  : %g  (common causes cap the redundancy)\n\n",
              analysis::top_event_probability(ccf));

  // --- modularization ----------------------------------------------------
  const auto modules = analysis::find_modules(nominal);
  std::printf("independent modules (%zu):\n", modules.size());
  for (const auto& m : modules) {
    std::printf("  %-24s %zu events\n", nominal.node(m.gate).name.c_str(),
                m.descendant_events);
  }

  // --- path sets ----------------------------------------------------------
  bdd::FaultTreeBdd exact(nominal);
  std::printf("\nminimal path sets : %.0f\n", exact.path_set_count());
  if (const auto best = exact.most_probable_path_set()) {
    std::printf("cheapest healthy set keeping trains safe: %s (P = %.4f)\n",
                best->first.to_string(nominal).c_str(), best->second);
  }

  // --- uncertainty ---------------------------------------------------------
  analysis::UncertaintyOptions uo;
  uo.samples = 2000;
  uo.default_error_factor = 3.0;
  const auto unc = analysis::monte_carlo(nominal, uo);
  std::printf("\nuncertainty (EF=3, %zu samples):\n", unc.samples);
  std::printf("  P(top): mean %.3g   [p05 %.3g, p50 %.3g, p95 %.3g]\n",
              unc.mean, unc.p05, unc.p50, unc.p95);
  std::printf("  MPMCS stability:\n");
  for (const auto& [cut, share] : unc.mpmcs_shares) {
    if (share < 0.01) continue;
    std::printf("    %5.1f%%  %s\n", share * 100.0,
                cut.to_string(nominal).c_str());
  }
  return 0;
}
